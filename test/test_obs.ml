(* Observability layer tests: the log-scale histogram against a
   sorted-list oracle, the closed abort taxonomy and its engine wiring,
   off-mode inertness, and byte determinism of the trace export across
   sweep worker counts. *)

module Trace = Obs.Trace
module Hist = Obs.Histogram

(* --- histogram vs sorted-list oracle -------------------------------- *)

let prop_histogram_percentiles =
  (* [percentile] returns the inclusive upper bound of the bucket
     holding the oracle rank: never below the true order statistic,
     and above it by at most one sub-bucket width (<= true/8, or 1). *)
  QCheck.Test.make ~name:"percentiles track the sorted-list oracle" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 300) (int_bound 5_000_000))
    (fun xs ->
      let h = Hist.create () in
      List.iter (Hist.record h) xs;
      let sorted = Array.of_list (List.sort Int.compare xs) in
      let n = Array.length sorted in
      List.for_all
        (fun p ->
          let tv = sorted.(int_of_float (p *. float_of_int (n - 1))) in
          let r = Hist.percentile h p in
          r >= tv && r <= tv + max 1 (tv / 8))
        [ 0.0; 0.5; 0.9; 0.99; 0.999; 1.0 ])

let test_histogram_small_values_exact () =
  let h = Hist.create () in
  List.iter (Hist.record h) [ 0; 3; 3; 7; 12; 15 ];
  Alcotest.(check int) "count" 6 (Hist.count h);
  Alcotest.(check int) "p0" 0 (Hist.percentile h 0.0);
  Alcotest.(check int) "p50" 3 (Hist.percentile h 0.5);
  Alcotest.(check int) "p100" 15 (Hist.percentile h 1.0)

let test_histogram_summary () =
  let h = Hist.create () in
  Alcotest.(check int) "empty" 0 (Hist.summary h).Hist.count;
  for v = 1 to 1000 do
    Hist.record h (v * 100)
  done;
  let s = Hist.summary h in
  Alcotest.(check int) "count" 1000 s.Hist.count;
  Alcotest.(check int) "max exact" 100_000 s.Hist.max_us;
  Alcotest.(check bool) "p50 near 50_000" true
    (s.Hist.p50_us >= 50_000 && s.Hist.p50_us <= 50_000 + (50_000 / 8));
  Alcotest.(check bool) "p50 <= p90" true (s.Hist.p50_us <= s.Hist.p90_us);
  Alcotest.(check bool) "p90 <= p99" true (s.Hist.p90_us <= s.Hist.p99_us);
  Alcotest.(check bool) "p99 <= max" true (s.Hist.p99_us <= s.Hist.max_us)

(* --- taxonomy -------------------------------------------------------- *)

let test_taxonomy_closed () =
  Alcotest.(check int) "count" 6 Obs.Taxonomy.count;
  Alcotest.(check int) "|all|" Obs.Taxonomy.count (List.length Obs.Taxonomy.all);
  (* The v1 prefix is frozen: post-v1 buckets only ever append, so
     exports that serialize nonzero post-v1 entries stay byte-compatible
     with pre-recovery goldens. *)
  Alcotest.(check int) "v1 prefix" 5 Obs.Taxonomy.v1_count;
  List.iteri
    (fun i t -> Alcotest.(check int) "index follows all-order" i (Obs.Taxonomy.index t))
    Obs.Taxonomy.all;
  Alcotest.(check (list string))
    "names"
    [ "ww-conflict"; "stale-snapshot"; "spec-misprediction"; "cascade"; "timeout"; "partition" ]
    (List.map Obs.Taxonomy.name Obs.Taxonomy.all)

let test_taxonomy_of_abort () =
  (* The compiler enforces exhaustiveness; this pins the mapping. *)
  List.iter
    (fun (reason, expect) ->
      Alcotest.(check string)
        (Core.Types.abort_reason_to_string reason)
        expect
        (Obs.Taxonomy.name (Core.Types.taxonomy_of_abort reason)))
    [
      (Core.Types.Local_conflict, "ww-conflict");
      (Core.Types.Remote_conflict, "ww-conflict");
      (Core.Types.Snapshot_too_old, "stale-snapshot");
      (Core.Types.Evicted, "spec-misprediction");
      (Core.Types.Dependency_aborted, "cascade");
      (Core.Types.Node_failure, "partition");
      (Core.Types.Prepare_timeout, "timeout");
    ]

(* --- trace recording ------------------------------------------------- *)

let test_off_mode_records_nothing () =
  let tr = Trace.disabled () in
  Alcotest.(check bool) "off" false (Trace.enabled tr);
  let h = Trace.span_begin tr ~kind:Trace.S_tx ~pid:1 ~tid:1 ~t0:0 () in
  Alcotest.(check int) "off handle" (-1) h;
  Trace.span_end tr h ~t1:5;
  Trace.instant tr ~kind:Trace.I_commit ~pid:1 ~tid:1 ~time:3 ();
  Trace.count_abort tr Obs.Taxonomy.Ww_conflict;
  Trace.count_msg tr Trace.M_prepare;
  Trace.set_stat tr "x" 1;
  Alcotest.(check int) "no events" 0 (Trace.n_events tr);
  Alcotest.(check (list int)) "no abort counts" [ 0; 0; 0; 0; 0 ]
    (List.map snd (Trace.abort_counts tr))

let make_traced_cluster () =
  let sim = Dsim.Sim.create () in
  let dcs = 3 in
  let topology = Dsim.Topology.uniform ~dcs ~rtt_ms:80. ~intra_rtt_ms:0.5 in
  let node_dc = Array.init dcs (fun i -> i) in
  let rng = Dsim.Rng.create ~seed:11 in
  let net = Dsim.Network.create ~sim ~topology ~node_dc ~jitter:0. ~rng in
  let placement = Store.Placement.ring ~n_nodes:dcs ~replication_factor:2 () in
  let trace = Trace.create () in
  let eng =
    Core.Engine.create ~sim ~net ~placement ~config:(Core.Config.str ()) ~trace ()
  in
  (sim, eng, trace)

let test_abort_taxonomy_buckets () =
  (* Drive every abort reason through the one funnel (Engine.abort_tx)
     and check each lands in its taxonomy bucket. *)
  let sim, eng, trace = make_traced_cluster () in
  Dsim.Fiber.spawn sim (fun () ->
      List.iter
        (fun reason ->
          let tx = Core.Engine.begin_tx eng ~origin:0 in
          Core.Engine.abort_tx eng tx reason)
        [
          Core.Types.Local_conflict;
          Core.Types.Remote_conflict;
          Core.Types.Snapshot_too_old;
          Core.Types.Evicted;
          Core.Types.Dependency_aborted;
          Core.Types.Node_failure;
          Core.Types.Prepare_timeout;
        ]);
  ignore (Dsim.Sim.run sim);
  List.iter
    (fun (name, expected) ->
      Alcotest.(check int) name expected (List.assoc name (Trace.abort_counts trace)))
    [
      ("ww-conflict", 2);
      ("stale-snapshot", 1);
      ("spec-misprediction", 1);
      ("cascade", 1);
      ("timeout", 1);
      ("partition", 1);
    ]

(* --- end-to-end traced run ------------------------------------------- *)

let small_setup ?(clients = 8) ~seed () =
  let placement = Store.Placement.ring ~n_nodes:3 ~replication_factor:2 () in
  (* The paper's high-contention workload, with the hotspot heated up
     so w-w conflicts are certain within the short window. *)
  let params = { Workload.Synthetic.synth_b with Workload.Synthetic.hot_prob = 0.4 } in
  {
    (Harness.Runner.default_setup
       ~workload:(Workload.Synthetic.make ~params placement)
       ~config:(Core.Config.str ()))
    with
    Harness.Runner.topology = Dsim.Topology.uniform ~dcs:3 ~rtt_ms:80. ~intra_rtt_ms:0.5;
    replication_factor = 2;
    clients_per_node = clients;
    warmup_us = 100_000;
    measure_us = 400_000;
    seed;
    jitter = 0.;
  }

let run_traced ~seed =
  let trace = Trace.create () in
  let r = Harness.Runner.run ~trace (small_setup ~seed ()) in
  (r, trace)

let test_traced_run_contents () =
  let r, trace = run_traced ~seed:5 in
  Alcotest.(check bool) "events recorded" true (Trace.n_events trace > 0);
  (* Taxonomy buckets reconcile with the run's whole-life Stats counters
     (the trace sees warmup + drain too, so compare against the engine
     totals, not the measurement-window delta in [r.stats]). *)
  Alcotest.(check bool) "ww conflicts observed" true
    (List.assoc "ww-conflict" (Trace.abort_counts trace) > 0);
  ignore r;
  (* Lifecycle spans and instants are present. *)
  let spans = Hashtbl.create 8 and instants = Hashtbl.create 8 in
  Trace.iter trace (fun ev ->
      match ev.Trace.kind with
      | `Span k -> Hashtbl.replace spans (Trace.span_name k) ()
      | `Instant k -> Hashtbl.replace instants (Trace.instant_name k) ());
  List.iter
    (fun s -> Alcotest.(check bool) (s ^ " span present") true (Hashtbl.mem spans s))
    [ "tx"; "read"; "lock-hold"; "local-cert"; "repl-wait" ];
  List.iter
    (fun s -> Alcotest.(check bool) (s ^ " instant present") true (Hashtbl.mem instants s))
    [ "local-commit"; "commit"; "abort" ];
  (* Message counters and the run-summary stats are sealed in. *)
  List.iter
    (fun m ->
      Alcotest.(check bool) (m ^ " counted") true
        (List.assoc m (Trace.msg_counts trace) > 0))
    [ "prepare"; "prepare-reply"; "replicate"; "commit" ];
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " stat set") true
        (match Trace.find_stat trace s with Some v -> v > 0 | None -> false))
    [ "commits"; "eq_pushes"; "eq_pops"; "eq_max_depth"; "net_messages"; "interdc_rtt_max_us" ]

let test_trace_stats_reconcile_engine_stats () =
  (* Same setup, traced and untraced: tracing must not perturb the
     simulation (same commits), and the sealed commit stat must agree
     with the runner's own accounting. *)
  let r0 = Harness.Runner.run (small_setup ~seed:5 ()) in
  let r1, trace = run_traced ~seed:5 in
  Alcotest.(check int) "same commits with tracing on"
    r0.Harness.Runner.committed r1.Harness.Runner.committed;
  Alcotest.(check (option int))
    "sealed commit count" (Some r1.Harness.Runner.committed)
    (Trace.find_stat trace "commits")

let test_chrome_export_parses () =
  let _, trace = run_traced ~seed:5 in
  let chrome = Obs.Export.chrome [ ("cell", trace) ] in
  (match Harness.Bench_json.parse chrome with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("chrome export does not parse: " ^ e));
  let jsonl = Obs.Export.jsonl [ ("cell", trace) ] in
  String.split_on_char '\n' jsonl
  |> List.iter (fun line ->
         if line <> "" then
           match Harness.Bench_json.parse line with
           | Ok _ -> ()
           | Error e -> Alcotest.fail ("jsonl line does not parse: " ^ e))

(* --- export determinism across worker counts ------------------------- *)

let sweep_export ~jobs =
  let tracer = Harness.Tracing.create () in
  let cells =
    List.map
      (fun (name, seed) ->
        let trace = Harness.Tracing.trace_for tracer ~cell:name in
        Harness.Sweep.cell name (fun () ->
            (Harness.Runner.run ?trace (small_setup ~clients:4 ~seed ())).Harness.Runner
              .committed))
      [ ("seed=3", 3); ("seed=4", 4); ("seed=5", 5) ]
  in
  let results = Harness.Sweep.run ~jobs cells in
  (List.map snd results, Harness.Tracing.export_chrome tracer, Harness.Tracing.export_jsonl tracer)

let test_export_bytes_jobs_invariant () =
  let r1, chrome1, jsonl1 = sweep_export ~jobs:1 in
  let r4, chrome4, jsonl4 = sweep_export ~jobs:4 in
  Alcotest.(check (list int)) "results identical" r1 r4;
  Alcotest.(check bool) "chrome bytes identical" true (String.equal chrome1 chrome4);
  Alcotest.(check bool) "jsonl bytes identical" true (String.equal jsonl1 jsonl4);
  Alcotest.(check int) "fingerprints agree"
    (Obs.Export.fingerprint chrome1) (Obs.Export.fingerprint chrome4)

let test_tracing_filter_pins_pids () =
  (* A filtered-out cell still consumes its pid-base slot, so the pids
     of later cells do not depend on the filter. *)
  let t_all = Harness.Tracing.create () in
  let t_some = Harness.Tracing.create ~filter:"keep" () in
  let reg t cell = Harness.Tracing.trace_for t ~cell in
  let a_all = reg t_all "drop=1" and a_some = reg t_some "drop=1" in
  let b_all = reg t_all "keep=1" and b_some = reg t_some "keep=1" in
  Alcotest.(check bool) "unfiltered traces first cell" true (a_all <> None);
  Alcotest.(check bool) "filter drops first cell" true (a_some = None);
  (match (b_all, b_some) with
  | Some x, Some y ->
    Alcotest.(check int) "same pid base either way" (Trace.pid_base x) (Trace.pid_base y)
  | _ -> Alcotest.fail "second cell must be traced in both");
  Alcotest.(check int) "n_selected respects filter" 1 (Harness.Tracing.n_selected t_some)

(* --- critical-path decomposition ------------------------------------- *)

module Critpath = Obs.Critpath
module Ts = Obs.Timeseries

let csum = Array.fold_left ( + ) 0

let test_critpath_painting () =
  let t = Critpath.make_txn ~a:0 ~b:1 ~t0:100 ~t1:200 in
  let d0 = Critpath.decompose t in
  Alcotest.(check int) "bare span is all coordinator" 100
    d0.(Critpath.index Critpath.C_coord_cpu);
  Alcotest.(check int) "bare sum" 100 (csum d0);
  Critpath.add_ival t Critpath.C_repl_wait ~lo:120 ~hi:180;
  Critpath.add_ival t Critpath.C_network ~lo:150 ~hi:160 (* overpaints repl-wait *);
  Critpath.add_ival t Critpath.C_lock_wait ~lo:190 ~hi:250 (* clipped at t1 *);
  Critpath.add_ival t Critpath.C_olc_wait ~lo:150 ~hi:150 (* empty: dropped *);
  let d = Critpath.decompose t in
  Alcotest.(check int) "network overpaints repl-wait" 10
    d.(Critpath.index Critpath.C_network);
  Alcotest.(check int) "repl-wait keeps the rest" 50
    d.(Critpath.index Critpath.C_repl_wait);
  Alcotest.(check int) "lock-wait clipped to the span" 10
    d.(Critpath.index Critpath.C_lock_wait);
  Alcotest.(check int) "base fills every hole" 30
    d.(Critpath.index Critpath.C_coord_cpu);
  Alcotest.(check int) "exact sum" (Critpath.total_us t) (csum d)

let test_critpath_edge_and_hidden () =
  let t = Critpath.make_txn ~a:1 ~b:2 ~t0:0 ~t1:100 in
  Critpath.add_edge t
    {
      Obs.Causal.ekind = 2;
      ea = 1;
      eb = 2;
      esrc = 0;
      edst = 1;
      et_enq = 10;
      et_wire = 14;
      et_deliver = 40;
      equeue = 6;
      ecost = 5;
    };
  let d = Critpath.decompose t in
  Alcotest.(check int) "batch-park" 4 d.(Critpath.index Critpath.C_batch_park);
  Alcotest.(check int) "network" 26 d.(Critpath.index Critpath.C_network);
  Alcotest.(check int) "queue-wait" 6 d.(Critpath.index Critpath.C_queue_wait);
  Alcotest.(check int) "dispatch-cpu" 5 d.(Critpath.index Critpath.C_dispatch_cpu);
  Alcotest.(check int) "exact sum" 100 (csum d);
  Alcotest.(check int) "no spec commit: all externalized" 100 (Critpath.externalized_us t);
  t.Critpath.t_spec_commit <- 30;
  Alcotest.(check int) "externalized stops at spec commit" 30 (Critpath.externalized_us t);
  Alcotest.(check int) "hidden is the rest" 70 (Critpath.hidden_us t)

(* Contended burst through a hand-built cluster, so the property can
   range over the queue discipline (heap vs wheel) and batching —
   dimensions the closed-loop Runner does not expose. *)
let drive_traced ?(base_config = Core.Config.str ()) ~queue ~batch ~seed ~txs ~spread () =
  let sim = Dsim.Sim.create ~queue () in
  let dcs = 3 in
  let topology = Dsim.Topology.uniform ~dcs ~rtt_ms:60. ~intra_rtt_ms:0.5 in
  let node_dc = Array.init dcs (fun i -> i) in
  let rng = Dsim.Rng.create ~seed in
  let net = Dsim.Network.create ~sim ~topology ~node_dc ~jitter:0. ~rng in
  let placement = Store.Placement.ring ~n_nodes:dcs ~replication_factor:2 () in
  let trace = Trace.create () in
  let config =
    if batch then Core.Config.with_batching ~batch_window_us:300 ~batch_max:4 base_config
    else base_config
  in
  let eng = Core.Engine.create ~sim ~net ~placement ~config ~trace () in
  let key ~p name = Store.Keyspace.Key.v ~partition:p name in
  let hot = key ~p:0 "hot" in
  Core.Engine.load eng hot (Store.Keyspace.Value.Int 0);
  for i = 0 to txs - 1 do
    Dsim.Fiber.spawn sim (fun () ->
        Dsim.Fiber.sleep sim (i * spread);
        let tx = Core.Engine.begin_tx eng ~origin:(i mod dcs) in
        try
          let v = Workload.Spec.read_int eng tx hot in
          Core.Engine.write eng tx hot (Store.Keyspace.Value.Int (v + 1));
          Core.Engine.write eng tx
            (key ~p:((i mod 2) + 1) (Printf.sprintf "k%d" i))
            (Store.Keyspace.Value.Int i);
          ignore (Core.Engine.commit eng tx)
        with Core.Types.Tx_abort _ -> ())
  done;
  ignore (Dsim.Sim.run sim);
  trace

let prop_critpath_exact_sum =
  (* The ISSUE's headline invariant: for every transaction of a traced
     run, the component sums partition the S_tx span exactly — across
     random contention, both simulator queues, batching on and off. *)
  QCheck.Test.make ~name:"components sum exactly to the tx span" ~count:20
    QCheck.(
      quad (int_range 1 500) bool bool (int_range 100 2_500))
    (fun (seed, wheel, batch, spread) ->
      let queue = if wheel then `Wheel else `Heap in
      let trace = drive_traced ~queue ~batch ~seed ~txs:12 ~spread () in
      let txns = Critpath.of_trace trace in
      txns <> []
      && List.for_all
           (fun t ->
             csum (Critpath.decompose t) = Critpath.total_us t
             && Critpath.externalized_us t + Critpath.hidden_us t
                = Critpath.total_us t)
           txns)

let test_critpath_of_trace_attributes_waits () =
  (* A contended traced run must attribute real latency to non-base
     components.  The non-speculative baseline keeps certification
     inside the S_tx span; there the convoy (lock-wait) and the wire
     show up directly, while repl-wait itself is overpainted by the
     finer per-hop components of whatever prepare is in flight — the
     documented paint semantics. *)
  let trace =
    drive_traced ~base_config:(Core.Config.clocksi_rep ()) ~queue:`Heap ~batch:false
      ~seed:5 ~txs:12 ~spread:800 ()
  in
  let txns = Critpath.of_trace trace in
  let totals = Array.make Critpath.n_components 0 in
  List.iter
    (fun t ->
      Array.iteri (fun i v -> totals.(i) <- totals.(i) + v) (Critpath.decompose t))
    txns;
  Alcotest.(check bool) "transactions assembled" true (txns <> []);
  Alcotest.(check bool) "lock-wait attributed" true
    (totals.(Critpath.index Critpath.C_lock_wait) > 0);
  Alcotest.(check bool) "network attributed" true
    (totals.(Critpath.index Critpath.C_network) > 0);
  Alcotest.(check bool) "destination queue/dispatch attributed" true
    (totals.(Critpath.index Critpath.C_queue_wait)
     + totals.(Critpath.index Critpath.C_dispatch_cpu)
    > 0);
  (* Batching on: parked time appears. *)
  let trb =
    drive_traced ~base_config:(Core.Config.clocksi_rep ()) ~queue:`Heap ~batch:true
      ~seed:5 ~txs:12 ~spread:800 ()
  in
  let parked =
    List.fold_left
      (fun acc t -> acc + (Critpath.decompose t).(Critpath.index Critpath.C_batch_park))
      0 (Critpath.of_trace trb)
  in
  Alcotest.(check bool) "batch-park attributed under batching" true (parked > 0)

(* --- timeseries ------------------------------------------------------- *)

let test_timeseries_basics () =
  let ts = Ts.create ~interval_us:100 ~cols:[ "a"; "b" ] in
  Alcotest.(check int) "no rows yet" 0 (Ts.n_rows ts);
  Ts.sample ts ~time:100 [| 3; 10 |];
  Ts.sample ts ~time:200 [| 7; 10 |];
  Ts.sample ts ~time:300 [| 8; 4 |];
  Alcotest.(check int) "rows" 3 (Ts.n_rows ts);
  Alcotest.(check int) "cols" 2 (Ts.n_cols ts);
  Alcotest.(check (option int)) "col_index" (Some 1) (Ts.col_index ts "b");
  Alcotest.(check int) "time" 200 (Ts.time ts 1);
  Alcotest.(check int) "value" 7 (Ts.value ts ~row:1 ~col:0);
  Alcotest.(check (array int)) "delta of cumulative col" [| 3; 4; 1 |]
    (Ts.delta ts ~col:0);
  Alcotest.(check string) "csv"
    "t_us,a,b\n100,3,10\n200,7,10\n300,8,4\n" (Ts.to_csv ts);
  (match Ts.to_jsonl ts |> String.split_on_char '\n' with
  | first :: _ -> (
    match Harness.Bench_json.parse first with
    | Ok _ -> ()
    | Error e -> Alcotest.fail ("jsonl row does not parse: " ^ e))
  | [] -> Alcotest.fail "empty jsonl");
  (* Sampling after creation validates the row width. *)
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Timeseries.sample: row width mismatch") (fun () ->
      Ts.sample ts ~time:400 [| 1 |]);
  Alcotest.check_raises "bad interval"
    (Invalid_argument "Timeseries.create: interval_us <= 0") (fun () ->
      ignore (Ts.create ~interval_us:0 ~cols:[ "a" ]))

let test_timeseries_sampler_in_runner () =
  (* A timeseries-recording run reports the same protocol outcome as a
     plain one (sampling is observational), and the series rows land on
     the exact interval grid with cumulative commits. *)
  let r0 = Harness.Runner.run (small_setup ~seed:5 ()) in
  let r1 = Harness.Runner.run ~timeseries_us:50_000 (small_setup ~seed:5 ()) in
  Alcotest.(check int) "same commits with sampling on"
    r0.Harness.Runner.committed r1.Harness.Runner.committed;
  match r1.Harness.Runner.timeseries with
  | None -> Alcotest.fail "no timeseries recorded"
  | Some ts ->
    Alcotest.(check (list string)) "standard columns" Harness.Runner.sample_columns
      (Ts.cols ts);
    Alcotest.(check bool) "rows recorded" true (Ts.n_rows ts > 0);
    for i = 0 to Ts.n_rows ts - 1 do
      Alcotest.(check int) (Printf.sprintf "row %d on the grid" i)
        ((i + 1) * 50_000) (Ts.time ts i)
    done;
    let commits_col =
      match Ts.col_index ts "commits" with Some i -> i | None -> -1 in
    let last = Ts.value ts ~row:(Ts.n_rows ts - 1) ~col:commits_col in
    Alcotest.(check bool) "cumulative commits reach the engine total" true
      (last > 0 && last >= r1.Harness.Runner.committed)

let test_timeseries_jobs_invariant () =
  (* Same setup swept at -j1 and -j4: the recorded series must be
     byte-identical (it rides inside the traced cells). *)
  let run_ts () =
    let r = Harness.Runner.run ~timeseries_us:50_000 (small_setup ~clients:4 ~seed:3 ()) in
    match r.Harness.Runner.timeseries with Some ts -> Ts.to_csv ts | None -> ""
  in
  let cells jobs =
    Harness.Sweep.run ~jobs [ Harness.Sweep.cell "a" run_ts; Harness.Sweep.cell "b" run_ts ]
  in
  let c1 = cells 1 and c4 = cells 4 in
  Alcotest.(check bool) "csv bytes invariant under jobs" true
    (List.map snd c1 = List.map snd c4);
  Alcotest.(check bool) "non-empty" true (List.for_all (fun (_, s) -> s <> "") c1)

let () =
  Alcotest.run "obs"
    [
      ( "histogram",
        [
          QCheck_alcotest.to_alcotest prop_histogram_percentiles;
          Alcotest.test_case "small values exact" `Quick test_histogram_small_values_exact;
          Alcotest.test_case "summary" `Quick test_histogram_summary;
        ] );
      ( "taxonomy",
        [
          Alcotest.test_case "closed, indexed, named" `Quick test_taxonomy_closed;
          Alcotest.test_case "abort-reason mapping" `Quick test_taxonomy_of_abort;
          Alcotest.test_case "engine funnels into buckets" `Quick test_abort_taxonomy_buckets;
        ] );
      ( "trace",
        [
          Alcotest.test_case "off mode records nothing" `Quick test_off_mode_records_nothing;
          Alcotest.test_case "traced run contents" `Quick test_traced_run_contents;
          Alcotest.test_case "tracing does not perturb the run" `Quick
            test_trace_stats_reconcile_engine_stats;
          Alcotest.test_case "exports parse as JSON" `Quick test_chrome_export_parses;
        ] );
      ( "export-determinism",
        [
          Alcotest.test_case "bytes invariant under jobs" `Quick
            test_export_bytes_jobs_invariant;
          Alcotest.test_case "filter pins pid bases" `Quick test_tracing_filter_pins_pids;
        ] );
      ( "critpath",
        [
          Alcotest.test_case "paint priority and clipping" `Quick test_critpath_painting;
          Alcotest.test_case "edge intervals and hidden latency" `Quick
            test_critpath_edge_and_hidden;
          QCheck_alcotest.to_alcotest prop_critpath_exact_sum;
          Alcotest.test_case "of_trace attributes real waits" `Quick
            test_critpath_of_trace_attributes_waits;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "recorder basics" `Quick test_timeseries_basics;
          Alcotest.test_case "sampler rides the runner" `Quick
            test_timeseries_sampler_in_runner;
          Alcotest.test_case "bytes invariant under jobs" `Quick
            test_timeseries_jobs_invariant;
        ] );
    ]
