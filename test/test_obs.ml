(* Observability layer tests: the log-scale histogram against a
   sorted-list oracle, the closed abort taxonomy and its engine wiring,
   off-mode inertness, and byte determinism of the trace export across
   sweep worker counts. *)

module Trace = Obs.Trace
module Hist = Obs.Histogram

(* --- histogram vs sorted-list oracle -------------------------------- *)

let prop_histogram_percentiles =
  (* [percentile] returns the inclusive upper bound of the bucket
     holding the oracle rank: never below the true order statistic,
     and above it by at most one sub-bucket width (<= true/8, or 1). *)
  QCheck.Test.make ~name:"percentiles track the sorted-list oracle" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 300) (int_bound 5_000_000))
    (fun xs ->
      let h = Hist.create () in
      List.iter (Hist.record h) xs;
      let sorted = Array.of_list (List.sort Int.compare xs) in
      let n = Array.length sorted in
      List.for_all
        (fun p ->
          let tv = sorted.(int_of_float (p *. float_of_int (n - 1))) in
          let r = Hist.percentile h p in
          r >= tv && r <= tv + max 1 (tv / 8))
        [ 0.0; 0.5; 0.9; 0.99; 0.999; 1.0 ])

let test_histogram_small_values_exact () =
  let h = Hist.create () in
  List.iter (Hist.record h) [ 0; 3; 3; 7; 12; 15 ];
  Alcotest.(check int) "count" 6 (Hist.count h);
  Alcotest.(check int) "p0" 0 (Hist.percentile h 0.0);
  Alcotest.(check int) "p50" 3 (Hist.percentile h 0.5);
  Alcotest.(check int) "p100" 15 (Hist.percentile h 1.0)

let test_histogram_summary () =
  let h = Hist.create () in
  Alcotest.(check int) "empty" 0 (Hist.summary h).Hist.count;
  for v = 1 to 1000 do
    Hist.record h (v * 100)
  done;
  let s = Hist.summary h in
  Alcotest.(check int) "count" 1000 s.Hist.count;
  Alcotest.(check int) "max exact" 100_000 s.Hist.max_us;
  Alcotest.(check bool) "p50 near 50_000" true
    (s.Hist.p50_us >= 50_000 && s.Hist.p50_us <= 50_000 + (50_000 / 8));
  Alcotest.(check bool) "p50 <= p90" true (s.Hist.p50_us <= s.Hist.p90_us);
  Alcotest.(check bool) "p90 <= p99" true (s.Hist.p90_us <= s.Hist.p99_us);
  Alcotest.(check bool) "p99 <= max" true (s.Hist.p99_us <= s.Hist.max_us)

(* --- taxonomy -------------------------------------------------------- *)

let test_taxonomy_closed () =
  Alcotest.(check int) "count" 6 Obs.Taxonomy.count;
  Alcotest.(check int) "|all|" Obs.Taxonomy.count (List.length Obs.Taxonomy.all);
  (* The v1 prefix is frozen: post-v1 buckets only ever append, so
     exports that serialize nonzero post-v1 entries stay byte-compatible
     with pre-recovery goldens. *)
  Alcotest.(check int) "v1 prefix" 5 Obs.Taxonomy.v1_count;
  List.iteri
    (fun i t -> Alcotest.(check int) "index follows all-order" i (Obs.Taxonomy.index t))
    Obs.Taxonomy.all;
  Alcotest.(check (list string))
    "names"
    [ "ww-conflict"; "stale-snapshot"; "spec-misprediction"; "cascade"; "timeout"; "partition" ]
    (List.map Obs.Taxonomy.name Obs.Taxonomy.all)

let test_taxonomy_of_abort () =
  (* The compiler enforces exhaustiveness; this pins the mapping. *)
  List.iter
    (fun (reason, expect) ->
      Alcotest.(check string)
        (Core.Types.abort_reason_to_string reason)
        expect
        (Obs.Taxonomy.name (Core.Types.taxonomy_of_abort reason)))
    [
      (Core.Types.Local_conflict, "ww-conflict");
      (Core.Types.Remote_conflict, "ww-conflict");
      (Core.Types.Snapshot_too_old, "stale-snapshot");
      (Core.Types.Evicted, "spec-misprediction");
      (Core.Types.Dependency_aborted, "cascade");
      (Core.Types.Node_failure, "partition");
      (Core.Types.Prepare_timeout, "timeout");
    ]

(* --- trace recording ------------------------------------------------- *)

let test_off_mode_records_nothing () =
  let tr = Trace.disabled () in
  Alcotest.(check bool) "off" false (Trace.enabled tr);
  let h = Trace.span_begin tr ~kind:Trace.S_tx ~pid:1 ~tid:1 ~t0:0 () in
  Alcotest.(check int) "off handle" (-1) h;
  Trace.span_end tr h ~t1:5;
  Trace.instant tr ~kind:Trace.I_commit ~pid:1 ~tid:1 ~time:3 ();
  Trace.count_abort tr Obs.Taxonomy.Ww_conflict;
  Trace.count_msg tr Trace.M_prepare;
  Trace.set_stat tr "x" 1;
  Alcotest.(check int) "no events" 0 (Trace.n_events tr);
  Alcotest.(check (list int)) "no abort counts" [ 0; 0; 0; 0; 0 ]
    (List.map snd (Trace.abort_counts tr))

let make_traced_cluster () =
  let sim = Dsim.Sim.create () in
  let dcs = 3 in
  let topology = Dsim.Topology.uniform ~dcs ~rtt_ms:80. ~intra_rtt_ms:0.5 in
  let node_dc = Array.init dcs (fun i -> i) in
  let rng = Dsim.Rng.create ~seed:11 in
  let net = Dsim.Network.create ~sim ~topology ~node_dc ~jitter:0. ~rng in
  let placement = Store.Placement.ring ~n_nodes:dcs ~replication_factor:2 () in
  let trace = Trace.create () in
  let eng =
    Core.Engine.create ~sim ~net ~placement ~config:(Core.Config.str ()) ~trace ()
  in
  (sim, eng, trace)

let test_abort_taxonomy_buckets () =
  (* Drive every abort reason through the one funnel (Engine.abort_tx)
     and check each lands in its taxonomy bucket. *)
  let sim, eng, trace = make_traced_cluster () in
  Dsim.Fiber.spawn sim (fun () ->
      List.iter
        (fun reason ->
          let tx = Core.Engine.begin_tx eng ~origin:0 in
          Core.Engine.abort_tx eng tx reason)
        [
          Core.Types.Local_conflict;
          Core.Types.Remote_conflict;
          Core.Types.Snapshot_too_old;
          Core.Types.Evicted;
          Core.Types.Dependency_aborted;
          Core.Types.Node_failure;
          Core.Types.Prepare_timeout;
        ]);
  ignore (Dsim.Sim.run sim);
  List.iter
    (fun (name, expected) ->
      Alcotest.(check int) name expected (List.assoc name (Trace.abort_counts trace)))
    [
      ("ww-conflict", 2);
      ("stale-snapshot", 1);
      ("spec-misprediction", 1);
      ("cascade", 1);
      ("timeout", 1);
      ("partition", 1);
    ]

(* --- end-to-end traced run ------------------------------------------- *)

let small_setup ?(clients = 8) ~seed () =
  let placement = Store.Placement.ring ~n_nodes:3 ~replication_factor:2 () in
  (* The paper's high-contention workload, with the hotspot heated up
     so w-w conflicts are certain within the short window. *)
  let params = { Workload.Synthetic.synth_b with Workload.Synthetic.hot_prob = 0.4 } in
  {
    (Harness.Runner.default_setup
       ~workload:(Workload.Synthetic.make ~params placement)
       ~config:(Core.Config.str ()))
    with
    Harness.Runner.topology = Dsim.Topology.uniform ~dcs:3 ~rtt_ms:80. ~intra_rtt_ms:0.5;
    replication_factor = 2;
    clients_per_node = clients;
    warmup_us = 100_000;
    measure_us = 400_000;
    seed;
    jitter = 0.;
  }

let run_traced ~seed =
  let trace = Trace.create () in
  let r = Harness.Runner.run ~trace (small_setup ~seed ()) in
  (r, trace)

let test_traced_run_contents () =
  let r, trace = run_traced ~seed:5 in
  Alcotest.(check bool) "events recorded" true (Trace.n_events trace > 0);
  (* Taxonomy buckets reconcile with the run's whole-life Stats counters
     (the trace sees warmup + drain too, so compare against the engine
     totals, not the measurement-window delta in [r.stats]). *)
  Alcotest.(check bool) "ww conflicts observed" true
    (List.assoc "ww-conflict" (Trace.abort_counts trace) > 0);
  ignore r;
  (* Lifecycle spans and instants are present. *)
  let spans = Hashtbl.create 8 and instants = Hashtbl.create 8 in
  Trace.iter trace (fun ev ->
      match ev.Trace.kind with
      | `Span k -> Hashtbl.replace spans (Trace.span_name k) ()
      | `Instant k -> Hashtbl.replace instants (Trace.instant_name k) ());
  List.iter
    (fun s -> Alcotest.(check bool) (s ^ " span present") true (Hashtbl.mem spans s))
    [ "tx"; "read"; "lock-hold"; "local-cert"; "repl-wait" ];
  List.iter
    (fun s -> Alcotest.(check bool) (s ^ " instant present") true (Hashtbl.mem instants s))
    [ "local-commit"; "commit"; "abort" ];
  (* Message counters and the run-summary stats are sealed in. *)
  List.iter
    (fun m ->
      Alcotest.(check bool) (m ^ " counted") true
        (List.assoc m (Trace.msg_counts trace) > 0))
    [ "prepare"; "prepare-reply"; "replicate"; "commit" ];
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " stat set") true
        (match Trace.find_stat trace s with Some v -> v > 0 | None -> false))
    [ "commits"; "eq_pushes"; "eq_pops"; "eq_max_depth"; "net_messages"; "interdc_rtt_max_us" ]

let test_trace_stats_reconcile_engine_stats () =
  (* Same setup, traced and untraced: tracing must not perturb the
     simulation (same commits), and the sealed commit stat must agree
     with the runner's own accounting. *)
  let r0 = Harness.Runner.run (small_setup ~seed:5 ()) in
  let r1, trace = run_traced ~seed:5 in
  Alcotest.(check int) "same commits with tracing on"
    r0.Harness.Runner.committed r1.Harness.Runner.committed;
  Alcotest.(check (option int))
    "sealed commit count" (Some r1.Harness.Runner.committed)
    (Trace.find_stat trace "commits")

let test_chrome_export_parses () =
  let _, trace = run_traced ~seed:5 in
  let chrome = Obs.Export.chrome [ ("cell", trace) ] in
  (match Harness.Bench_json.parse chrome with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("chrome export does not parse: " ^ e));
  let jsonl = Obs.Export.jsonl [ ("cell", trace) ] in
  String.split_on_char '\n' jsonl
  |> List.iter (fun line ->
         if line <> "" then
           match Harness.Bench_json.parse line with
           | Ok _ -> ()
           | Error e -> Alcotest.fail ("jsonl line does not parse: " ^ e))

(* --- export determinism across worker counts ------------------------- *)

let sweep_export ~jobs =
  let tracer = Harness.Tracing.create () in
  let cells =
    List.map
      (fun (name, seed) ->
        let trace = Harness.Tracing.trace_for tracer ~cell:name in
        Harness.Sweep.cell name (fun () ->
            (Harness.Runner.run ?trace (small_setup ~clients:4 ~seed ())).Harness.Runner
              .committed))
      [ ("seed=3", 3); ("seed=4", 4); ("seed=5", 5) ]
  in
  let results = Harness.Sweep.run ~jobs cells in
  (List.map snd results, Harness.Tracing.export_chrome tracer, Harness.Tracing.export_jsonl tracer)

let test_export_bytes_jobs_invariant () =
  let r1, chrome1, jsonl1 = sweep_export ~jobs:1 in
  let r4, chrome4, jsonl4 = sweep_export ~jobs:4 in
  Alcotest.(check (list int)) "results identical" r1 r4;
  Alcotest.(check bool) "chrome bytes identical" true (String.equal chrome1 chrome4);
  Alcotest.(check bool) "jsonl bytes identical" true (String.equal jsonl1 jsonl4);
  Alcotest.(check int) "fingerprints agree"
    (Obs.Export.fingerprint chrome1) (Obs.Export.fingerprint chrome4)

let test_tracing_filter_pins_pids () =
  (* A filtered-out cell still consumes its pid-base slot, so the pids
     of later cells do not depend on the filter. *)
  let t_all = Harness.Tracing.create () in
  let t_some = Harness.Tracing.create ~filter:"keep" () in
  let reg t cell = Harness.Tracing.trace_for t ~cell in
  let a_all = reg t_all "drop=1" and a_some = reg t_some "drop=1" in
  let b_all = reg t_all "keep=1" and b_some = reg t_some "keep=1" in
  Alcotest.(check bool) "unfiltered traces first cell" true (a_all <> None);
  Alcotest.(check bool) "filter drops first cell" true (a_some = None);
  (match (b_all, b_some) with
  | Some x, Some y ->
    Alcotest.(check int) "same pid base either way" (Trace.pid_base x) (Trace.pid_base y)
  | _ -> Alcotest.fail "second cell must be traced in both");
  Alcotest.(check int) "n_selected respects filter" 1 (Harness.Tracing.n_selected t_some)

let () =
  Alcotest.run "obs"
    [
      ( "histogram",
        [
          QCheck_alcotest.to_alcotest prop_histogram_percentiles;
          Alcotest.test_case "small values exact" `Quick test_histogram_small_values_exact;
          Alcotest.test_case "summary" `Quick test_histogram_summary;
        ] );
      ( "taxonomy",
        [
          Alcotest.test_case "closed, indexed, named" `Quick test_taxonomy_closed;
          Alcotest.test_case "abort-reason mapping" `Quick test_taxonomy_of_abort;
          Alcotest.test_case "engine funnels into buckets" `Quick test_abort_taxonomy_buckets;
        ] );
      ( "trace",
        [
          Alcotest.test_case "off mode records nothing" `Quick test_off_mode_records_nothing;
          Alcotest.test_case "traced run contents" `Quick test_traced_run_contents;
          Alcotest.test_case "tracing does not perturb the run" `Quick
            test_trace_stats_reconcile_engine_stats;
          Alcotest.test_case "exports parse as JSON" `Quick test_chrome_export_parses;
        ] );
      ( "export-determinism",
        [
          Alcotest.test_case "bytes invariant under jobs" `Quick
            test_export_bytes_jobs_invariant;
          Alcotest.test_case "filter pins pid bases" `Quick test_tracing_filter_pins_pids;
        ] );
    ]
