.PHONY: all build test check mc lint bench bench-quick

all: build

build:
	dune build

test:
	dune runtest

lint:
	dune build bin/lint.exe && ./_build/default/bin/lint.exe lib

# Deep model-checking configuration (exhausts the dcs=2/keys=2/txs=3
# schedule tree; takes on the order of a minute).
mc:
	dune build @mc

check: test mc

# Full benchmark pass: regenerate the paper tables, run the bechamel
# suite, then write BENCH.json and diff it against the committed
# baseline (bench/BENCH.baseline.json).
bench:
	dune build bench/main.exe
	./_build/default/bench/main.exe
	./_build/default/bench/main.exe json

# Machine-readable report + baseline diff only (fast; what CI runs).
bench-quick:
	dune build bench/main.exe
	./_build/default/bench/main.exe json
