.PHONY: all build test check mc mc-crash mc-batch lint trace-smoke trace-cp bench bench-quick bench-scale tables tables-quick

all: build

build:
	dune build

test:
	dune runtest

# Static analysis: token lint + cross-file protocol-flow rules
# (Check.Analyzer).  `--format json` emits a SARIF-style report; add
# `-j N` to fan the per-file pass over N domains (output is
# byte-identical whatever the value).
lint:
	dune build bin/lint.exe && ./_build/default/bin/lint.exe lib

# Trace smoke test: tiny traced run -> validate the Chrome JSON + byte
# fingerprint golden (test/goldens/trace_smoke.expected).
trace-smoke:
	dune build @trace-smoke

# Critical-path smoke: decompose the smoke/batched traces into latency
# components and replay a recorded snapshot series
# (test/goldens/trace_critpath.expected).
trace-cp:
	dune build @trace-cp

# Deep model-checking configuration (exhausts the dcs=2/keys=2/txs=3
# schedule tree; takes on the order of a minute).
mc:
	dune build @mc

# Deep crash-schedule model checking: crash-recover of a node ordered
# against every reachable protocol point (heap + wheel), including the
# rf=1 tree where fail-over cannot promote.  Slower than @mc.
mc-crash:
	dune build @mc-crash

# Batched-pipeline model checking: message coalescing on (flushes are
# ordinary explored transitions), heap + wheel, plus a crash schedule
# where in-doubt batched prepares must resolve via AC1-AC5 and a broken
# recovery variant that must still be caught through the batched path.
mc-batch:
	dune build @mc-batch

check: test mc mc-crash mc-batch lint

# Worker domains for the sweep grid (empty = STR_JOBS or the
# recommended domain count).  Table output is byte-identical whatever
# the value; only wall-clock changes.
JOBS ?=
JOBS_FLAG = $(if $(JOBS),-j $(JOBS),)

# Regenerate every paper table/figure (Quick scale: CI-friendly).
tables-quick:
	dune build bench/main.exe
	./_build/default/bench/main.exe tables $(JOBS_FLAG)

# Same at Full scale (matches the experiment index in DESIGN.md).
tables:
	dune build bench/main.exe
	./_build/default/bench/main.exe tables --full $(JOBS_FLAG)

# Per-PR bench trajectory slot: bench/BENCH_<n>.json, n = highest
# committed slot + 1 (override with BENCH_ID=<n>).
BENCH_ID ?= $(shell ls bench/BENCH_[0-9]*.json 2>/dev/null \
	| sed 's/.*BENCH_\([0-9]*\)\.json/\1/' | sort -n | tail -1 \
	| awk '{ print $$1 + 1 }' ; true)

# Full benchmark pass: regenerate the paper tables, run the bechamel
# suite, write BENCH.json + the bench/BENCH_$(BENCH_ID).json trajectory
# snapshot, and diff against the committed baseline
# (bench/BENCH.baseline.json) — the diff prints the regression verdict.
bench:
	dune build bench/main.exe
	./_build/default/bench/main.exe $(JOBS_FLAG)
	./_build/default/bench/main.exe json
	./_build/default/bench/main.exe json bench/BENCH_$(if $(BENCH_ID),$(BENCH_ID),0).json

# Machine-readable report + baseline diff only (fast; what CI runs).
bench-quick:
	dune build bench/main.exe
	./_build/default/bench/main.exe json

# Million-client scale probe: one open-loop run of ~1M clients on the
# 9-DC grid per queue structure (binary heap, then timer wheel),
# asserting the two produce identical results, then the regular json
# report with the scale rows (events/s, bytes/event, peak RSS) appended
# into the numbered trajectory slot.
bench-scale:
	dune build bench/main.exe
	./_build/default/bench/main.exe scale bench/BENCH_$(if $(BENCH_ID),$(BENCH_ID),0).json
