.PHONY: all build test check mc lint

all: build

build:
	dune build

test:
	dune runtest

lint:
	dune build bin/lint.exe && ./_build/default/bin/lint.exe lib

# Deep model-checking configuration (exhausts the dcs=2/keys=2/txs=3
# schedule tree; takes on the order of a minute).
mc:
	dune build @mc

check: test mc
