(* Text report over a Chrome trace produced by `str_sim --trace`.

     trace_stats FILE              convoy-effect report: lock hold-time
                                   distribution vs the inter-DC RTT,
                                   abort taxonomy, message counts
     trace_stats --validate FILE   structural check + byte fingerprint
                                   (the trace-smoke golden)

   The trace is self-contained: span timings live in "traceEvents",
   per-cell counters and run-summary stats in the "strMeta" object the
   exporter appends. *)

open Cmdliner
module J = Harness.Bench_json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- JSON accessors ------------------------------------------------- *)

let field name = function
  | J.Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let field_exn ctx name j =
  match field name j with
  | Some v -> v
  | None -> failwith (Printf.sprintf "%s: missing %S" ctx name)

let as_arr ctx = function J.Arr l -> l | _ -> failwith (ctx ^ ": expected array")
let as_obj ctx = function J.Obj kvs -> kvs | _ -> failwith (ctx ^ ": expected object")

let as_int ctx = function
  | J.Num f when Float.is_integer f -> int_of_float f
  | _ -> failwith (ctx ^ ": expected integer")

let as_str ctx = function J.Str s -> s | _ -> failwith (ctx ^ ": expected string")

let opt_str name j = Option.map (as_str name) (field name j)

(* --- trace decoding ------------------------------------------------- *)

type span = { name : string; dur : int }

type cell = {
  cell_name : string;
  events : int;
  aborts : (string * int) list;
  msgs : (string * int) list;
  stats : (string * int) list;
}

type trace = { spans : span list; n_instants : int; cells : cell list }

let decode_event j =
  match opt_str "ph" j with
  | Some "X" ->
    let name = as_str "span name" (field_exn "span" "name" j) in
    let dur = as_int "dur" (field_exn "span" "dur" j) in
    ignore (as_int "ts" (field_exn "span" "ts" j));
    ignore (as_int "pid" (field_exn "span" "pid" j));
    ignore (as_int "tid" (field_exn "span" "tid" j));
    if dur < 0 then failwith "span: negative dur";
    `Span { name; dur }
  | Some "i" ->
    ignore (as_int "ts" (field_exn "instant" "ts" j));
    `Instant
  | Some "M" -> `Meta
  | Some ph -> failwith ("unknown event ph: " ^ ph)
  | None -> failwith "event without ph"

let int_pairs ctx j =
  List.map (fun (k, v) -> (k, as_int (ctx ^ "." ^ k) v)) (as_obj ctx j)

let decode_cell j =
  {
    cell_name = as_str "cell name" (field_exn "cell" "name" j);
    events = as_int "cell events" (field_exn "cell" "events" j);
    aborts = int_pairs "aborts" (field_exn "cell" "aborts" j);
    msgs = int_pairs "msgs" (field_exn "cell" "msgs" j);
    stats = int_pairs "stats" (field_exn "cell" "stats" j);
  }

let decode src =
  match J.parse src with
  | Error e -> failwith ("JSON parse error: " ^ e)
  | Ok root ->
    let events = as_arr "traceEvents" (field_exn "root" "traceEvents" root) in
    let meta = field_exn "root" "strMeta" root in
    let cells =
      List.map decode_cell (as_arr "strMeta.cells" (field_exn "strMeta" "cells" meta))
    in
    let spans = ref [] and n_instants = ref 0 in
    List.iter
      (fun ev ->
        match decode_event ev with
        | `Span s -> spans := s :: !spans
        | `Instant -> incr n_instants
        | `Meta -> ())
      events;
    let t = { spans = List.rev !spans; n_instants = !n_instants; cells } in
    (* The per-cell event counts in strMeta must account for every
       non-metadata event in the stream. *)
    let declared = List.fold_left (fun acc c -> acc + c.events) 0 t.cells in
    let actual = List.length t.spans + t.n_instants in
    if declared <> actual then
      failwith
        (Printf.sprintf "strMeta event count %d <> %d trace events" declared actual);
    t

(* --- reports -------------------------------------------------------- *)

let validate file =
  let src = read_file file in
  let t = decode src in
  Printf.printf "valid chrome trace\n";
  Printf.printf "cells: %d\n" (List.length t.cells);
  Printf.printf "spans: %d\n" (List.length t.spans);
  Printf.printf "instants: %d\n" t.n_instants;
  Printf.printf "fingerprint: %d\n" (Obs.Export.fingerprint src)

let sum_counts cells proj =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun c ->
      List.iter
        (fun (k, v) ->
          Hashtbl.replace tbl k (v + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
        (proj c))
    cells;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let stat_range cells name ~f ~init =
  List.fold_left
    (fun acc c ->
      match List.assoc_opt name c.stats with Some v -> f acc v | None -> acc)
    init cells

let pct num den = if den = 0 then 0. else 100. *. float_of_int num /. float_of_int den

let report file =
  let t = decode (read_file file) in
  Printf.printf "== trace report: %s ==\n" (Filename.basename file);
  Printf.printf "cells: %d\n" (List.length t.cells);
  List.iter
    (fun c ->
      let stat n = Option.value ~default:0 (List.assoc_opt n c.stats) in
      Printf.printf
        "  %-40s events=%d commits=%d eq_max_depth=%d net_msgs=%d wan=%d fifo_delays=%d\n"
        c.cell_name c.events (stat "commits") (stat "eq_max_depth") (stat "net_messages")
        (stat "net_wan_messages") (stat "net_fifo_delays"))
    t.cells;
  let print_counts header counts =
    Printf.printf "%s\n" header;
    if counts = [] then Printf.printf "  (none)\n"
    else List.iter (fun (k, v) -> Printf.printf "  %-16s %d\n" k v) counts
  in
  print_counts "-- aborts by taxonomy --" (sum_counts t.cells (fun c -> c.aborts));
  print_counts "-- messages by kind --" (sum_counts t.cells (fun c -> c.msgs));
  let stat_sum name =
    List.fold_left
      (fun acc c -> acc + Option.value ~default:0 (List.assoc_opt name c.stats))
      0 t.cells
  in
  (* Pipeline efficiency: how many messages one committed transaction
     costs — the headline number message coalescing moves. *)
  let commits = stat_sum "commits" in
  Printf.printf "-- messages per commit --\n";
  if commits = 0 then Printf.printf "  (no commits)\n"
  else begin
    let per n = float_of_int n /. float_of_int commits in
    Printf.printf "  logical: %.1f  wan-wire: %.1f\n"
      (per (stat_sum "net_messages"))
      (per (stat_sum "net_wan_messages"));
    let batches = stat_sum "net_batches" in
    if batches > 0 then Printf.printf "  coalesced flushes: %.1f\n" (per batches)
  end;
  (* Batch occupancy: how full the coalescing windows ran (only batched
     traces carry these stats). *)
  let flushes = stat_sum "batch_flushes" in
  if flushes > 0 then begin
    let payloads = stat_sum "batch_payloads" in
    Printf.printf "-- batch occupancy --\n";
    Printf.printf "  flushes: %d  payloads: %d  mean payload/flush: %.1f\n" flushes
      payloads
      (float_of_int payloads /. float_of_int flushes);
    for i = 1 to 16 do
      let c = stat_sum (Printf.sprintf "batch_occ_%02d" i) in
      if c > 0 then
        Printf.printf "  %s%2d payloads: %d flush(es)\n"
          (if i = 16 then ">=" else "  ")
          i c
    done;
    let sweeps = stat_sum "cert_sweeps" in
    if sweeps > 0 then
      Printf.printf "  certification sweeps: %d covering %d prepare(s)\n" sweeps
        (stat_sum "cert_swept")
  end;
  (* Convoy effect: certified writers hold their locks across the
     synchronous replication round, so under contention the lock
     hold-time tail should reach (and exceed) the inter-DC RTT. *)
  let holds = List.filter (fun s -> s.name = "lock-hold") t.spans in
  let hist = Obs.Histogram.create () in
  List.iter (fun s -> Obs.Histogram.record hist s.dur) holds;
  let s = Obs.Histogram.summary hist in
  Printf.printf "-- lock hold times (convoy effect) --\n";
  Printf.printf "  holds: %d\n" s.Obs.Histogram.count;
  if s.Obs.Histogram.count > 0 then begin
    Printf.printf "  p50=%dus p90=%dus p99=%dus p999=%dus max=%dus\n"
      s.Obs.Histogram.p50_us s.Obs.Histogram.p90_us s.Obs.Histogram.p99_us
      s.Obs.Histogram.p999_us s.Obs.Histogram.max_us;
    let rtt_lo = stat_range t.cells "interdc_rtt_min_us" ~f:min ~init:max_int in
    let rtt_hi = stat_range t.cells "interdc_rtt_max_us" ~f:max ~init:0 in
    if rtt_lo <= rtt_hi && rtt_hi > 0 then begin
      Printf.printf "  inter-DC RTT: min=%dus max=%dus\n" rtt_lo rtt_hi;
      let over lim = List.length (List.filter (fun s -> s.dur >= lim) holds) in
      let n = List.length holds in
      Printf.printf "  holds >= min RTT: %d (%.1f%%)\n" (over rtt_lo) (pct (over rtt_lo) n);
      Printf.printf "  holds >= max RTT: %d (%.1f%%)\n" (over rtt_hi) (pct (over rtt_hi) n)
    end
    else Printf.printf "  inter-DC RTT: n/a (single DC)\n"
  end

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Chrome trace JSON.")

let validate_arg =
  Arg.(
    value & flag
    & info [ "validate" ]
        ~doc:
          "Structural check only: parse the trace, cross-check the strMeta event \
           counts, and print a byte fingerprint (the trace-smoke golden).")

let main validate_only file =
  try
    if validate_only then validate file else report file;
    0
  with Failure msg ->
    Printf.eprintf "trace_stats: %s: %s\n" file msg;
    1

let () =
  let info =
    Cmd.info "trace_stats"
      ~doc:"Summarize a str_sim trace: abort taxonomy, message counts, convoy effect"
  in
  exit (Cmd.eval' (Cmd.v info Term.(const main $ validate_arg $ file_arg)))
