(* Text report over a Chrome trace produced by `str_sim --trace`.

     trace_stats FILE                 convoy-effect report: lock hold-time
                                      distribution vs the inter-DC RTT,
                                      abort taxonomy, message counts
     trace_stats --validate FILE      structural check + byte fingerprint
                                      (the trace-smoke golden)
     trace_stats --critical-path FILE per-transaction critical-path
                                      decomposition: every committed and
                                      aborted transaction's latency split
                                      exactly into named components, plus
                                      the hidden-vs-externalized split
     trace_stats --timeseries FILE    embedded snapshot series as CSV

   The trace is self-contained: span timings live in "traceEvents",
   per-cell counters, causal message edges and the optional snapshot
   series in the "strMeta" object the exporter appends.  Every report is
   a pure function of the trace bytes — byte-identical across [-j]
   workers because the trace itself is. *)

open Cmdliner
module J = Harness.Bench_json
module Critpath = Obs.Critpath

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- JSON accessors ------------------------------------------------- *)

let field name = function
  | J.Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let field_exn ctx name j =
  match field name j with
  | Some v -> v
  | None -> failwith (Printf.sprintf "%s: missing %S" ctx name)

let as_arr ctx = function J.Arr l -> l | _ -> failwith (ctx ^ ": expected array")
let as_obj ctx = function J.Obj kvs -> kvs | _ -> failwith (ctx ^ ": expected object")

let as_int ctx = function
  | J.Num f when Float.is_integer f -> int_of_float f
  | _ -> failwith (ctx ^ ": expected integer")

let as_str ctx = function J.Str s -> s | _ -> failwith (ctx ^ ": expected string")

let opt_str name j = Option.map (as_str name) (field name j)

(* --- trace decoding ------------------------------------------------- *)

type span = {
  name : string;
  ts : int;
  dur : int;
  pid : int;
  tx : (int * int) option;  (** args.tx, "origin.number" *)
}

type instant = { iname : string; its : int; ipid : int; itx : (int * int) option }

type cell = {
  cell_name : string;
  events : int;
  aborts : (string * int) list;
  msgs : (string * int) list;
  stats : (string * int) list;
  pid_base : int;  (** 0 when the trace predates causal edges *)
  edges : Obs.Causal.edge list;
  tseries : Obs.Timeseries.t option;
}

type trace = { spans : span list; instants : instant list; cells : cell list }

(* args.tx is printed as "origin.number". *)
let decode_tx j =
  match field "args" j with
  | None -> None
  | Some args ->
    (match opt_str "tx" args with
    | None -> None
    | Some s ->
      (match String.index_opt s '.' with
      | None -> failwith ("malformed tx id: " ^ s)
      | Some i ->
        Some
          ( int_of_string (String.sub s 0 i),
            int_of_string (String.sub s (i + 1) (String.length s - i - 1)) )))

let decode_event j =
  match opt_str "ph" j with
  | Some "X" ->
    let name = as_str "span name" (field_exn "span" "name" j) in
    let dur = as_int "dur" (field_exn "span" "dur" j) in
    let ts = as_int "ts" (field_exn "span" "ts" j) in
    let pid = as_int "pid" (field_exn "span" "pid" j) in
    ignore (as_int "tid" (field_exn "span" "tid" j));
    if dur < 0 then failwith "span: negative dur";
    `Span { name; ts; dur; pid; tx = decode_tx j }
  | Some "i" ->
    let iname = as_str "instant name" (field_exn "instant" "name" j) in
    let its = as_int "ts" (field_exn "instant" "ts" j) in
    let ipid = as_int "pid" (field_exn "instant" "pid" j) in
    `Instant { iname; its; ipid; itx = decode_tx j }
  | Some "M" -> `Meta
  | Some ph -> failwith ("unknown event ph: " ^ ph)
  | None -> failwith "event without ph"

let int_pairs ctx j =
  List.map (fun (k, v) -> (k, as_int (ctx ^ "." ^ k) v)) (as_obj ctx j)

(* Edge rows are [kind,a,b,src,dst,t_enq,t_wire,t_deliver,queue,cost];
   a = b = -1 marks a send with no transaction context. *)
let decode_edge j =
  match as_arr "edge row" j with
  | [ k; a; b; src; dst; t_enq; t_wire; t_deliver; queue; cost ] ->
    let i ctx v = as_int ctx v in
    {
      Obs.Causal.ekind = i "edge kind" k;
      ea = (let v = i "edge a" a in if v < 0 then min_int else v);
      eb = (let v = i "edge b" b in if v < 0 then min_int else v);
      esrc = i "edge src" src;
      edst = i "edge dst" dst;
      et_enq = i "edge t_enq" t_enq;
      et_wire = i "edge t_wire" t_wire;
      et_deliver = i "edge t_deliver" t_deliver;
      equeue = i "edge queue" queue;
      ecost = i "edge cost" cost;
    }
  | _ -> failwith "edge row: expected 10 integers"

let decode_timeseries j =
  let interval_us = as_int "ts interval" (field_exn "timeseries" "interval_us" j) in
  let cols =
    List.map (as_str "ts col") (as_arr "ts cols" (field_exn "timeseries" "cols" j))
  in
  let ts = Obs.Timeseries.create ~interval_us ~cols in
  List.iter
    (fun row ->
      match as_arr "ts row" row with
      | t :: vs ->
        Obs.Timeseries.sample ts ~time:(as_int "ts time" t)
          (Array.of_list (List.map (as_int "ts value") vs))
      | [] -> failwith "timeseries: empty row")
    (as_arr "ts rows" (field_exn "timeseries" "rows" j));
  ts

let decode_cell j =
  {
    cell_name = as_str "cell name" (field_exn "cell" "name" j);
    events = as_int "cell events" (field_exn "cell" "events" j);
    aborts = int_pairs "aborts" (field_exn "cell" "aborts" j);
    msgs = int_pairs "msgs" (field_exn "cell" "msgs" j);
    stats = int_pairs "stats" (field_exn "cell" "stats" j);
    pid_base =
      (match field "pid_base" j with Some v -> as_int "pid_base" v | None -> 0);
    edges =
      (match field "edges" j with
      | Some v -> List.map decode_edge (as_arr "edges" v)
      | None -> []);
    tseries = Option.map decode_timeseries (field "timeseries" j);
  }

let decode src =
  match J.parse src with
  | Error e -> failwith ("JSON parse error: " ^ e)
  | Ok root ->
    let events = as_arr "traceEvents" (field_exn "root" "traceEvents" root) in
    let meta = field_exn "root" "strMeta" root in
    let cells =
      List.map decode_cell (as_arr "strMeta.cells" (field_exn "strMeta" "cells" meta))
    in
    let spans = ref [] and instants = ref [] in
    List.iter
      (fun ev ->
        match decode_event ev with
        | `Span s -> spans := s :: !spans
        | `Instant i -> instants := i :: !instants
        | `Meta -> ())
      events;
    let t = { spans = List.rev !spans; instants = List.rev !instants; cells } in
    (* The per-cell event counts in strMeta must account for every
       non-metadata event in the stream. *)
    let declared = List.fold_left (fun acc c -> acc + c.events) 0 t.cells in
    let actual = List.length t.spans + List.length t.instants in
    if declared <> actual then
      failwith
        (Printf.sprintf "strMeta event count %d <> %d trace events" declared actual);
    t

(* --- per-transaction causal DAG assembly ----------------------------- *)

(* Cells of a sweep occupy disjoint pid ranges ([pid_base + dc + 1]), so
   the owning cell of an event is the one with the greatest pid_base
   below its pid. *)
let cell_index_of_pid cells pid =
  (* cells appear in ascending pid_base order *)
  let idx = ref 0 in
  List.iteri (fun i c -> if c.pid_base < pid then idx := i) cells;
  !idx

(* Reassemble each cell's transactions exactly as {!Obs.Critpath.of_trace}
   does for in-memory traces: S_tx spans define the transactions, phase
   spans and instants attach by identity, then the cell's causal edges. *)
let assemble t =
  let n_cells = List.length t.cells in
  let tbls = Array.init n_cells (fun _ -> Hashtbl.create 256) in
  let orders = Array.make n_cells [] in
  List.iter
    (fun (s : span) ->
      match (s.name, s.tx) with
      | "tx", Some (a, b) ->
        let i = cell_index_of_pid t.cells s.pid in
        if not (Hashtbl.mem tbls.(i) (a, b)) then begin
          let txn = Critpath.make_txn ~a ~b ~t0:s.ts ~t1:(s.ts + s.dur) in
          Hashtbl.add tbls.(i) (a, b) txn;
          orders.(i) <- txn :: orders.(i)
        end
      | _ -> ())
    t.spans;
  let find pid tx =
    match tx with
    | None -> None
    | Some key ->
      let i = cell_index_of_pid t.cells pid in
      Option.map (fun txn -> txn) (Hashtbl.find_opt tbls.(i) key)
  in
  List.iter
    (fun (s : span) ->
      match
        List.find_opt (fun c -> Critpath.name c = s.name) Critpath.all
      with
      | Some comp -> (
        match find s.pid s.tx with
        | Some txn -> Critpath.add_ival txn comp ~lo:s.ts ~hi:(s.ts + s.dur)
        | None -> ())
      | None -> ())
    t.spans;
  List.iter
    (fun (i : instant) ->
      match find i.ipid i.itx with
      | None -> ()
      | Some txn -> (
        match i.iname with
        | "local-commit" -> txn.Critpath.t_local_commit <- i.its
        | "spec-commit" -> txn.Critpath.t_spec_commit <- i.its
        | "commit" -> txn.Critpath.outcome <- `Commit
        | "abort" -> txn.Critpath.outcome <- `Abort
        | _ -> ()))
    t.instants;
  List.iteri
    (fun i c ->
      List.iter
        (fun (e : Obs.Causal.edge) ->
          if e.Obs.Causal.ea <> min_int then
            match Hashtbl.find_opt tbls.(i) (e.Obs.Causal.ea, e.Obs.Causal.eb) with
            | Some txn -> Critpath.add_edge txn e
            | None -> ())
        c.edges)
    t.cells;
  Array.to_list (Array.map List.rev orders)

(* --- reports -------------------------------------------------------- *)

let validate file =
  let src = read_file file in
  let t = decode src in
  Printf.printf "valid chrome trace\n";
  Printf.printf "cells: %d\n" (List.length t.cells);
  Printf.printf "spans: %d\n" (List.length t.spans);
  Printf.printf "instants: %d\n" (List.length t.instants);
  let edges = List.fold_left (fun acc c -> acc + List.length c.edges) 0 t.cells in
  if edges > 0 then Printf.printf "edges: %d\n" edges;
  let ts_rows =
    List.fold_left
      (fun acc c ->
        acc + match c.tseries with Some ts -> Obs.Timeseries.n_rows ts | None -> 0)
      0 t.cells
  in
  if ts_rows > 0 then Printf.printf "timeseries rows: %d\n" ts_rows;
  Printf.printf "fingerprint: %d\n" (Obs.Export.fingerprint src)

let sum_counts cells proj =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun c ->
      List.iter
        (fun (k, v) ->
          Hashtbl.replace tbl k (v + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
        (proj c))
    cells;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let stat_range cells name ~f ~init =
  List.fold_left
    (fun acc c ->
      match List.assoc_opt name c.stats with Some v -> f acc v | None -> acc)
    init cells

let pct num den = if den = 0 then 0. else 100. *. float_of_int num /. float_of_int den

let report file =
  let t = decode (read_file file) in
  Printf.printf "== trace report: %s ==\n" (Filename.basename file);
  Printf.printf "cells: %d\n" (List.length t.cells);
  List.iter
    (fun c ->
      let stat n = Option.value ~default:0 (List.assoc_opt n c.stats) in
      Printf.printf
        "  %-40s events=%d commits=%d eq_max_depth=%d net_msgs=%d wan=%d fifo_delays=%d\n"
        c.cell_name c.events (stat "commits") (stat "eq_max_depth") (stat "net_messages")
        (stat "net_wan_messages") (stat "net_fifo_delays"))
    t.cells;
  let print_counts header counts =
    Printf.printf "%s\n" header;
    if counts = [] then Printf.printf "  (none)\n"
    else List.iter (fun (k, v) -> Printf.printf "  %-16s %d\n" k v) counts
  in
  print_counts "-- aborts by taxonomy --" (sum_counts t.cells (fun c -> c.aborts));
  print_counts "-- messages by kind --" (sum_counts t.cells (fun c -> c.msgs));
  let stat_sum name =
    List.fold_left
      (fun acc c -> acc + Option.value ~default:0 (List.assoc_opt name c.stats))
      0 t.cells
  in
  (* Pipeline efficiency: how many messages one committed transaction
     costs — the headline number message coalescing moves. *)
  let commits = stat_sum "commits" in
  Printf.printf "-- messages per commit --\n";
  if commits = 0 then Printf.printf "  (no commits)\n"
  else begin
    let per n = float_of_int n /. float_of_int commits in
    Printf.printf "  logical: %.1f  wan-wire: %.1f\n"
      (per (stat_sum "net_messages"))
      (per (stat_sum "net_wan_messages"));
    let batches = stat_sum "net_batches" in
    if batches > 0 then Printf.printf "  coalesced flushes: %.1f\n" (per batches)
  end;
  (* Batch occupancy: how full the coalescing windows ran (only batched
     traces carry these stats). *)
  let flushes = stat_sum "batch_flushes" in
  if flushes > 0 then begin
    let payloads = stat_sum "batch_payloads" in
    Printf.printf "-- batch occupancy --\n";
    Printf.printf "  flushes: %d  payloads: %d  mean payload/flush: %.1f\n" flushes
      payloads
      (float_of_int payloads /. float_of_int flushes);
    for i = 1 to 16 do
      let c = stat_sum (Printf.sprintf "batch_occ_%02d" i) in
      if c > 0 then
        Printf.printf "  %s%2d payloads: %d flush(es)\n"
          (if i = 16 then ">=" else "  ")
          i c
    done;
    let sweeps = stat_sum "cert_sweeps" in
    if sweeps > 0 then
      Printf.printf "  certification sweeps: %d covering %d prepare(s)\n" sweeps
        (stat_sum "cert_swept")
  end;
  (* Convoy effect: certified writers hold their locks across the
     synchronous replication round, so under contention the lock
     hold-time tail should reach (and exceed) the inter-DC RTT. *)
  let holds = List.filter (fun (s : span) -> s.name = "lock-hold") t.spans in
  let hist = Obs.Histogram.create () in
  List.iter (fun (s : span) -> Obs.Histogram.record hist s.dur) holds;
  let s = Obs.Histogram.summary hist in
  Printf.printf "-- lock hold times (convoy effect) --\n";
  Printf.printf "  holds: %d\n" s.Obs.Histogram.count;
  if s.Obs.Histogram.count > 0 then begin
    Printf.printf "  p50=%dus p90=%dus p99=%dus p999=%dus max=%dus\n"
      s.Obs.Histogram.p50_us s.Obs.Histogram.p90_us s.Obs.Histogram.p99_us
      s.Obs.Histogram.p999_us s.Obs.Histogram.max_us;
    let rtt_lo = stat_range t.cells "interdc_rtt_min_us" ~f:min ~init:max_int in
    let rtt_hi = stat_range t.cells "interdc_rtt_max_us" ~f:max ~init:0 in
    if rtt_lo <= rtt_hi && rtt_hi > 0 then begin
      Printf.printf "  inter-DC RTT: min=%dus max=%dus\n" rtt_lo rtt_hi;
      let over lim = List.length (List.filter (fun (s : span) -> s.dur >= lim) holds) in
      let n = List.length holds in
      Printf.printf "  holds >= min RTT: %d (%.1f%%)\n" (over rtt_lo) (pct (over rtt_lo) n);
      Printf.printf "  holds >= max RTT: %d (%.1f%%)\n" (over rtt_hi) (pct (over rtt_hi) n)
    end
    else Printf.printf "  inter-DC RTT: n/a (single DC)\n"
  end

(* --- critical-path report -------------------------------------------- *)

(* Per-cell table: each component's share of the summed observed
   latency, its per-affected-transaction mean and p99, and the
   hidden-vs-externalized split.  The per-transaction sums are exact by
   construction (boundary sweep + coordinator-compute base layer); the
   report re-verifies and prints the attribution rate anyway so a
   regression is visible in the golden. *)
let critical_path file =
  let t = decode (read_file file) in
  Printf.printf "== critical path: %s ==\n" (Filename.basename file);
  let edges = List.fold_left (fun acc c -> acc + List.length c.edges) 0 t.cells in
  if edges = 0 then
    Printf.printf "no causal edges in trace (recorded by traced runs of this build)\n"
  else begin
    let per_cell = assemble t in
    List.iter2
      (fun c txns ->
        Printf.printf "-- %s --\n" c.cell_name;
        let txns = List.filter (fun x -> Critpath.total_us x > 0) txns in
        let n = List.length txns in
        let commits =
          List.length (List.filter (fun x -> x.Critpath.outcome = `Commit) txns)
        in
        let aborts =
          List.length (List.filter (fun x -> x.Critpath.outcome = `Abort) txns)
        in
        Printf.printf "transactions: %d (%d commit, %d abort, %d open)\n" n commits
          aborts
          (n - commits - aborts);
        if n > 0 then begin
          let nc = Critpath.n_components in
          let totals = Array.make nc 0 in
          let counts = Array.make nc 0 in
          let hists = Array.init nc (fun _ -> Obs.Histogram.create ()) in
          let grand = ref 0 in
          let exact = ref 0 in
          let ext_hist = Obs.Histogram.create () in
          let ext_total = ref 0 and hidden_total = ref 0 in
          let spec_n = ref 0 in
          List.iter
            (fun txn ->
              let parts = Critpath.decompose txn in
              let total = Critpath.total_us txn in
              grand := !grand + total;
              if Array.fold_left ( + ) 0 parts = total then incr exact;
              Array.iteri
                (fun i v ->
                  if v > 0 then begin
                    totals.(i) <- totals.(i) + v;
                    counts.(i) <- counts.(i) + 1;
                    Obs.Histogram.record hists.(i) v
                  end)
                parts;
              let ext = Critpath.externalized_us txn in
              ext_total := !ext_total + ext;
              hidden_total := !hidden_total + Critpath.hidden_us txn;
              Obs.Histogram.record ext_hist ext;
              if txn.Critpath.t_spec_commit >= 0 then incr spec_n)
            txns;
          Printf.printf "attribution: %d/%d transactions exact (%.1f%% of latency)\n"
            !exact n
            (pct (Array.fold_left ( + ) 0 totals) !grand);
          Printf.printf "%-14s %6s %10s %8s %10s %10s\n" "component" "txs" "total(us)"
            "share" "mean(us)" "p99(us)";
          List.iteri
            (fun i comp ->
              if counts.(i) > 0 then begin
                let s = Obs.Histogram.summary hists.(i) in
                Printf.printf "%-14s %6d %10d %7.1f%% %10d %10d\n" (Critpath.name comp)
                  counts.(i) totals.(i)
                  (pct totals.(i) !grand)
                  (totals.(i) / counts.(i))
                  s.Obs.Histogram.p99_us
              end)
            Critpath.all;
          let ext_s = Obs.Histogram.summary ext_hist in
          Printf.printf
            "latency: total=%dus mean=%dus | externalized mean=%dus p99=%dus\n" !grand
            (!grand / n) (!ext_total / n) ext_s.Obs.Histogram.p99_us;
          Printf.printf
            "hidden by speculation: %dus (%.1f%% of latency, %d spec commit(s))\n"
            !hidden_total
            (pct !hidden_total !grand)
            !spec_n
        end)
      t.cells per_cell
  end

(* --- timeseries report ----------------------------------------------- *)

let timeseries file =
  let t = decode (read_file file) in
  let any = ref false in
  List.iter
    (fun c ->
      match c.tseries with
      | Some ts when Obs.Timeseries.n_rows ts > 0 ->
        any := true;
        Printf.printf "== timeseries: %s (interval %dus) ==\n" c.cell_name
          (Obs.Timeseries.interval_us ts);
        print_string (Obs.Timeseries.to_csv ts)
      | Some _ | None -> ())
    t.cells;
  if not !any then Printf.printf "no timeseries in trace (run with --timeseries-us)\n"

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Chrome trace JSON.")

let validate_arg =
  Arg.(
    value & flag
    & info [ "validate" ]
        ~doc:
          "Structural check only: parse the trace, cross-check the strMeta event \
           counts, and print a byte fingerprint (the trace-smoke golden).")

let critpath_arg =
  Arg.(
    value & flag
    & info [ "critical-path" ]
        ~doc:
          "Critical-path report: reassemble each transaction's causal DAG and split \
           its observed latency exactly into named components (network, queue wait, \
           batch parking, lock/OLC/dep waits, certification, replication, compute), \
           with the hidden-vs-externalized speculation split.")

let timeseries_arg =
  Arg.(
    value & flag
    & info [ "timeseries" ]
        ~doc:"Print the embedded deterministic snapshot series as CSV, per cell.")

let main validate_only critpath_only timeseries_only file =
  try
    (if validate_only then validate file
     else if critpath_only then critical_path file
     else if timeseries_only then timeseries file
     else report file);
    0
  with Failure msg ->
    Printf.eprintf "trace_stats: %s: %s\n" file msg;
    1

let () =
  let info =
    Cmd.info "trace_stats"
      ~doc:
        "Summarize a str_sim trace: abort taxonomy, message counts, convoy effect, \
         critical-path decomposition, time series"
  in
  exit
    (Cmd.eval'
       (Cmd.v info
          Term.(const main $ validate_arg $ critpath_arg $ timeseries_arg $ file_arg)))
