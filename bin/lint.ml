(* Determinism lint driver: scan OCaml sources for nondeterminism
   hazards (see Check.Lint).  Usage: lint [PATH ...]; defaults to lib/.
   Exits 1 when any finding survives the allow markers. *)

let () =
  let paths =
    match List.tl (Array.to_list Sys.argv) with [] -> [ "lib" ] | ps -> ps
  in
  let findings =
    try List.concat_map Check.Lint.scan_path paths
    with Sys_error msg ->
      Printf.eprintf "lint: %s\n" msg;
      exit 2
  in
  List.iter (fun f -> print_endline (Check.Lint.to_string f)) findings;
  match findings with
  | [] -> ()
  | fs ->
    Printf.eprintf "lint: %d finding(s); fix or annotate with (* lint: allow <rule> ... *)\n"
      (List.length fs);
    exit 1
