(* Static-analysis driver: run Check.Analyzer (token lint + cross-file
   protocol-flow rules) over OCaml sources.

   Usage: lint [OPTION ...] [PATH ...]        (defaults to lib/)
     --format text|json   report style (json = SARIF 2.1.0 shape)
     --rule RULE          report only RULE (repeatable)
     -j / --jobs N        fan the per-file pass over N domains
     --cache FILE         per-file result cache keyed by content hash

   Exits 1 when any finding survives the allow markers, 2 on usage or
   I/O errors. *)

let usage () =
  prerr_endline
    "usage: lint [--format text|json] [--rule RULE]... [-j N] [--cache FILE] \
     [PATH ...]";
  exit 2

let () =
  let format = ref "text" in
  let rules = ref [] in
  let jobs = ref 1 in
  let cache = ref None in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--format" :: v :: rest ->
      if v <> "text" && v <> "json" then begin
        Printf.eprintf "lint: unknown format '%s'\n" v;
        usage ()
      end;
      format := v;
      parse rest
    | "--rule" :: v :: rest ->
      if not (List.mem v Check.Analyzer.rule_names) then begin
        Printf.eprintf "lint: unknown rule '%s' (known: %s)\n" v
          (String.concat ", " Check.Analyzer.rule_names);
        usage ()
      end;
      rules := v :: !rules;
      parse rest
    | ("-j" | "--jobs") :: v :: rest -> (
      match int_of_string_opt v with
      | Some n when n >= 1 ->
        jobs := n;
        parse rest
      | _ ->
        Printf.eprintf "lint: bad job count '%s'\n" v;
        usage ())
    | "--cache" :: v :: rest ->
      cache := Some v;
      parse rest
    | ("--format" | "--rule" | "-j" | "--jobs" | "--cache") :: [] -> usage ()
    | ("--help" | "-h") :: _ -> usage ()
    | p :: rest ->
      if String.length p > 0 && p.[0] = '-' then begin
        Printf.eprintf "lint: unknown option '%s'\n" p;
        usage ()
      end;
      paths := p :: !paths;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let paths = match List.rev !paths with [] -> [ "lib" ] | ps -> ps in
  let sources =
    try Check.Analyzer.scan_paths paths
    with Sys_error msg ->
      Printf.eprintf "lint: %s\n" msg;
      exit 2
  in
  let rules = match List.rev !rules with [] -> None | rs -> Some rs in
  let report =
    Check.Analyzer.analyze ?rules ~jobs:!jobs ?cache_file:!cache sources
  in
  print_string
    (match !format with
    | "json" -> Check.Analyzer.render_json report
    | _ -> Check.Analyzer.render_text report);
  match report.Check.Analyzer.findings with
  | [] -> ()
  | fs ->
    Printf.eprintf
      "lint: %d finding(s); fix or annotate with (* lint: allow <rule> ... *)\n"
      (List.length fs);
    exit 1
