(* Command-line driver: regenerate any table/figure of the paper, or
   run a single custom simulation.

     str_sim fig3a [--full]     Figure 3(a), Synth-A
     str_sim fig3b [--full]     Figure 3(b), Synth-B
     str_sim fig4  [--full]     Figure 4, self-tuning
     str_sim table1 [--full]    Table 1, Precise Clocks ablation
     str_sim fig5a|fig5b|fig5c  Figure 5, TPC-C mixes
     str_sim fig6  [--full]     Figure 6, RUBiS
     str_sim storage            Precise Clocks storage overhead
     str_sim all   [--full]     everything
     str_sim run ...            one custom simulation *)

open Cmdliner

let scale_of_full full = if full then Harness.Experiments.Full else Harness.Experiments.Quick

let full_arg =
  Arg.(value & flag & info [ "full" ] ~doc:"Run the full-size sweep (slower).")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ]
        ~doc:
          "Worker domains executing the sweep grid in parallel.  Defaults to \
           $(b,STR_JOBS) when set, else the recommended domain count.  Output \
           is byte-identical whatever the value.")

let resolve_jobs = function Some n -> max 1 n | None -> Harness.Pool.default_jobs ()

let print_reports rs = List.iter (fun r -> Harness.Report.print r; print_newline ()) rs

let experiment_cmd name doc f =
  let term =
    Term.(
      const (fun full jobs -> print_reports (f ~jobs:(resolve_jobs jobs) (scale_of_full full)))
      $ full_arg $ jobs_arg)
  in
  Cmd.v (Cmd.info name ~doc) term

let run_custom protocol workload clients seconds seed =
  let config =
    match protocol with
    | "str" -> Core.Config.str ()
    | "clocksi" -> Core.Config.clocksi_rep ()
    | "extspec" -> Core.Config.ext_spec ()
    | "precise" -> Core.Config.precise ()
    | "physical-sr" -> Core.Config.physical_sr ()
    | "precise-sr" -> Core.Config.precise_sr ()
    | other -> failwith ("unknown protocol: " ^ other)
  in
  let placement =
    Store.Placement.ring ~n_nodes:(Dsim.Topology.size Dsim.Topology.ec2_nine)
      ~replication_factor:6 ()
  in
  let wl =
    match workload with
    | "synth-a" -> Workload.Synthetic.make ~params:Workload.Synthetic.synth_a placement
    | "synth-b" -> Workload.Synthetic.make ~params:Workload.Synthetic.synth_b placement
    | "tpcc-a" -> fst (Workload.Tpcc.make ~mix:Workload.Tpcc.mix_a placement)
    | "tpcc-b" -> fst (Workload.Tpcc.make ~mix:Workload.Tpcc.mix_b placement)
    | "tpcc-c" -> fst (Workload.Tpcc.make ~mix:Workload.Tpcc.mix_c placement)
    | "rubis" -> Workload.Rubis.make placement
    | other -> failwith ("unknown workload: " ^ other)
  in
  let setup =
    {
      (Harness.Runner.default_setup ~workload:wl ~config) with
      clients_per_node = clients;
      measure_us = seconds * 1_000_000;
      seed;
      self_tune = (if protocol = "str" then `On 1_000_000 else `Off);
    }
  in
  let r = Harness.Runner.run setup in
  Printf.printf "protocol=%s workload=%s clients/node=%d\n" protocol workload clients;
  Printf.printf "  throughput     : %.1f tx/s\n" r.Harness.Runner.throughput;
  Printf.printf "  abort rate     : %.1f%%\n" (100. *. r.Harness.Runner.abort_rate);
  Printf.printf "  misspeculation : %.1f%%\n" (100. *. r.Harness.Runner.misspec_rate);
  Printf.printf "  ext misspec    : %.1f%%\n" (100. *. r.Harness.Runner.ext_misspec_rate);
  Format.printf "  final latency  : %a@." Harness.Metrics.pp_summary
    r.Harness.Runner.final_latency;
  if r.Harness.Runner.spec_latency.Harness.Metrics.count > 0 then
    Format.printf "  spec latency   : %a@." Harness.Metrics.pp_summary
      r.Harness.Runner.spec_latency;
  Printf.printf "  WAN messages   : %d\n" r.Harness.Runner.wan_messages;
  Format.printf "  stats          : %a@." Core.Stats.pp r.Harness.Runner.stats

let run_cmd =
  let protocol =
    Arg.(
      value
      & opt string "str"
      & info [ "p"; "protocol" ] ~doc:"str | clocksi | extspec | precise | physical-sr")
  in
  let workload =
    Arg.(
      value
      & opt string "synth-a"
      & info [ "w"; "workload" ] ~doc:"synth-a | synth-b | tpcc-a | tpcc-b | tpcc-c | rubis")
  in
  let clients =
    Arg.(value & opt int 10 & info [ "c"; "clients" ] ~doc:"clients per node")
  in
  let seconds =
    Arg.(value & opt int 10 & info [ "t"; "seconds" ] ~doc:"measured (simulated) seconds")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"random seed") in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a single simulation and print its metrics")
    Term.(const run_custom $ protocol $ workload $ clients $ seconds $ seed)

let () =
  let open Harness.Experiments in
  let cmds =
    [
      experiment_cmd "fig3a" "Figure 3(a): Synth-A" (fun ~jobs s -> [ fig3 ~jobs ~scale:s `A ]);
      experiment_cmd "fig3b" "Figure 3(b): Synth-B" (fun ~jobs s -> [ fig3 ~jobs ~scale:s `B ]);
      experiment_cmd "fig4" "Figure 4: self-tuning" (fun ~jobs s -> [ fig4 ~jobs ~scale:s () ]);
      experiment_cmd "table1" "Table 1: Precise Clocks ablation"
        (fun ~jobs s -> [ table1 ~jobs ~scale:s () ]);
      experiment_cmd "fig5a" "Figure 5: TPC-C mix A" (fun ~jobs s -> [ fig5 ~jobs ~scale:s `A ]);
      experiment_cmd "fig5b" "Figure 5: TPC-C mix B" (fun ~jobs s -> [ fig5 ~jobs ~scale:s `B ]);
      experiment_cmd "fig5c" "Figure 5: TPC-C mix C" (fun ~jobs s -> [ fig5 ~jobs ~scale:s `C ]);
      experiment_cmd "fig6" "Figure 6: RUBiS" (fun ~jobs s -> [ fig6 ~jobs ~scale:s () ]);
      experiment_cmd "storage" "Precise Clocks storage overhead"
        (fun ~jobs s -> [ storage ~jobs ~scale:s () ]);
      experiment_cmd "ablations" "Extra ablations (DC count, replication factor, remote reads)"
        (fun ~jobs s -> ablations ~jobs ~scale:s ());
      experiment_cmd "all" "All tables and figures" (fun ~jobs s -> all ~jobs ~scale:s ());
      run_cmd;
    ]
  in
  let info = Cmd.info "str_sim" ~doc:"STR / SPSI geo-replication simulator" in
  exit (Cmd.eval (Cmd.group info cmds))
