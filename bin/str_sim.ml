(* Command-line driver: regenerate any table/figure of the paper, or
   run a single custom simulation.

     str_sim fig3a [--full]     Figure 3(a), Synth-A
     str_sim fig3b [--full]     Figure 3(b), Synth-B
     str_sim fig4  [--full]     Figure 4, self-tuning
     str_sim table1 [--full]    Table 1, Precise Clocks ablation
     str_sim fig5a|fig5b|fig5c  Figure 5, TPC-C mixes
     str_sim fig6  [--full]     Figure 6, RUBiS
     str_sim storage            Precise Clocks storage overhead
     str_sim failover           region failure: goodput through DC crash + recovery
     str_sim openloop [--full]  open-loop latency vs offered load
     str_sim batchfig [--full]  batching: throughput vs window x offered load
     str_sim all   [--full]     everything
     str_sim run ...            one custom simulation
                                (--arrival-rate switches it to open loop;
                                 --crash N crash-stops DC N mid-run and
                                 recovers it, under the recovery protocol) *)

open Cmdliner

let scale_of_full full = if full then Harness.Experiments.Full else Harness.Experiments.Quick

let full_arg =
  Arg.(value & flag & info [ "full" ] ~doc:"Run the full-size sweep (slower).")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ]
        ~doc:
          "Worker domains executing the sweep grid in parallel.  Defaults to \
           $(b,STR_JOBS) when set, else the recommended domain count.  Output \
           is byte-identical whatever the value.")

let resolve_jobs = function Some n -> max 1 n | None -> Harness.Pool.default_jobs ()

let print_reports rs = List.iter (fun r -> Harness.Report.print r; print_newline ()) rs

(* --- tracing options ------------------------------------------------ *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record the full span/counter trace of the run and write it to \
           $(docv) as Chrome trace-event JSON (open in Perfetto or \
           chrome://tracing; feed to $(b,trace_stats) for the text report).  \
           The bytes are identical whatever $(b,--jobs) is.")

let trace_jsonl_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-jsonl" ] ~docv:"FILE"
        ~doc:"Also (or instead) write the compact JSONL event log to $(docv).")

let trace_filter_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-filter" ] ~docv:"SUBSTRING"
        ~doc:
          "Only trace sweep cells whose name contains $(docv), e.g. \
           $(b,protocol=str) or $(b,clients=40).  Untraced cells still run \
           (and still reserve their process-id slot, keeping ids stable), \
           they just record nothing — use this to keep traces small on big \
           sweeps.")

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents)

let export_tracer tracer ~trace ~trace_jsonl =
  match tracer with
  | None -> ()
  | Some tr ->
    (match trace with
    | Some f -> write_file f (Harness.Tracing.export_chrome tr)
    | None -> ());
    (match trace_jsonl with
    | Some f -> write_file f (Harness.Tracing.export_jsonl tr)
    | None -> ());
    Printf.eprintf "traced %d cell(s)\n%!" (Harness.Tracing.n_selected tr)

let experiment_cmd name doc f =
  let term =
    Term.(
      const (fun full jobs -> print_reports (f ~jobs:(resolve_jobs jobs) (scale_of_full full)))
      $ full_arg $ jobs_arg)
  in
  Cmd.v (Cmd.info name ~doc) term

(* Experiment command whose sweep supports [?tracer]. *)
let traced_experiment_cmd name doc f =
  let term =
    Term.(
      const (fun full jobs trace trace_jsonl filter ->
          let tracer =
            if trace = None && trace_jsonl = None then None
            else Some (Harness.Tracing.create ?filter ())
          in
          print_reports (f ?tracer ~jobs:(resolve_jobs jobs) (scale_of_full full));
          export_tracer tracer ~trace ~trace_jsonl)
      $ full_arg $ jobs_arg $ trace_arg $ trace_jsonl_arg $ trace_filter_arg)
  in
  Cmd.v (Cmd.info name ~doc) term

(* Open-loop variant of `run`: fixed-rate Poisson injection through
   Harness.Openloop; --clients is the population per DC. *)
let run_openloop ~protocol ~wname ~config ~workload ~clients ~seconds ~warmup ~seed
    ~rate ~wheel ?timeseries_us ~timeseries_csv () =
  let setup =
    {
      (Harness.Openloop.default_setup ~workload ~config) with
      clients_per_dc = clients;
      arrival = Workload.Arrival.poisson ~rate_per_dc:rate;
      warmup_us = warmup * 1_000_000;
      measure_us = seconds * 1_000_000;
      seed;
      queue = (if wheel then `Wheel else `Heap);
    }
  in
  let r = Harness.Openloop.run ?timeseries_us setup in
  (match (timeseries_csv, r.Harness.Openloop.timeseries) with
  | Some f, Some ts -> write_file f (Obs.Timeseries.to_csv ts)
  | Some _, None | None, _ -> ());
  Printf.printf "open-loop protocol=%s workload=%s clients/DC=%d rate=%.1f tx/s/DC (%s)\n"
    protocol wname clients rate
    (if wheel then "wheel" else "heap");
  Printf.printf "  population     : %d clients\n" r.Harness.Openloop.clients;
  Printf.printf "  throughput     : %.1f tx/s (offered %.1f)\n"
    r.Harness.Openloop.throughput
    (rate *. float_of_int (Dsim.Topology.size setup.Harness.Openloop.topology));
  Printf.printf "  admitted/dropped : %d / %d arrivals\n" r.Harness.Openloop.admitted
    r.Harness.Openloop.dropped;
  Printf.printf "  peak in flight : %d\n" r.Harness.Openloop.peak_in_flight;
  Printf.printf "  abort rate     : %.1f%%\n" (100. *. r.Harness.Openloop.abort_rate);
  Format.printf "  final latency  : %a@." Harness.Metrics.pp_summary
    r.Harness.Openloop.final_latency;
  if r.Harness.Openloop.spec_latency.Harness.Metrics.count > 0 then
    Format.printf "  spec latency   : %a@." Harness.Metrics.pp_summary
      r.Harness.Openloop.spec_latency;
  Printf.printf "  events         : %d\n" r.Harness.Openloop.events;
  Format.printf "  stats          : %a@." Core.Stats.pp r.Harness.Openloop.stats

let run_custom protocol workload clients seconds warmup seed arrival_rate wheel
    crash crash_at_ms recover_at_ms batch_window batch_max timeseries_us_arg
    timeseries_csv trace_file trace_jsonl =
  (* Asking for the CSV without an interval means "record at the default
     interval". *)
  let timeseries_us =
    if timeseries_us_arg > 0 then Some timeseries_us_arg
    else if timeseries_csv <> None then Some 500_000
    else None
  in
  let config =
    match protocol with
    | "str" -> Core.Config.str ()
    | "clocksi" -> Core.Config.clocksi_rep ()
    | "extspec" -> Core.Config.ext_spec ()
    | "precise" -> Core.Config.precise ()
    | "physical-sr" -> Core.Config.physical_sr ()
    | "precise-sr" -> Core.Config.precise_sr ()
    | other -> failwith ("unknown protocol: " ^ other)
  in
  let config =
    if batch_window > 0 then
      Core.Config.with_batching ~batch_window_us:batch_window ~batch_max config
    else config
  in
  let placement =
    Store.Placement.ring ~n_nodes:(Dsim.Topology.size Dsim.Topology.ec2_nine)
      ~replication_factor:6 ()
  in
  let wl =
    match workload with
    | "synth-a" -> Workload.Synthetic.make ~params:Workload.Synthetic.synth_a placement
    | "synth-b" -> Workload.Synthetic.make ~params:Workload.Synthetic.synth_b placement
    | "tpcc-a" -> fst (Workload.Tpcc.make ~mix:Workload.Tpcc.mix_a placement)
    | "tpcc-b" -> fst (Workload.Tpcc.make ~mix:Workload.Tpcc.mix_b placement)
    | "tpcc-c" -> fst (Workload.Tpcc.make ~mix:Workload.Tpcc.mix_c placement)
    | "rubis" -> Workload.Rubis.make placement
    | other -> failwith ("unknown workload: " ^ other)
  in
  (* Crash-recover drill: crash-stop one DC mid-measurement and bring it
     back, with the atomic-commitment recovery protocol switched on (the
     config gains failure-detection periods so blocked certifications and
     in-doubt prepares terminate). *)
  let config, fault_plan =
    match crash with
    | None -> (config, [])
    | Some n ->
      let plan =
        (crash_at_ms * 1_000, Dsim.Fault.Crash n)
        ::
        (if recover_at_ms > crash_at_ms then
           [ (recover_at_ms * 1_000, Dsim.Fault.Recover n) ]
         else [])
      in
      (Core.Config.with_recovery config, plan)
  in
  match arrival_rate with
  | Some rate ->
    if trace_file <> None || trace_jsonl <> None then
      prerr_endline "note: --trace is not supported in open-loop mode; ignoring";
    if fault_plan <> [] then
      prerr_endline "note: --crash is not supported in open-loop mode; ignoring";
    run_openloop ~protocol ~wname:workload ~config ~workload:wl ~clients ~seconds
      ~warmup ~seed ~rate ~wheel ?timeseries_us ~timeseries_csv ()
  | None ->
  if wheel then
    prerr_endline "note: --wheel only applies with --arrival-rate; ignoring";
  let setup =
    {
      (Harness.Runner.default_setup ~workload:wl ~config) with
      clients_per_node = clients;
      warmup_us = warmup * 1_000_000;
      measure_us = seconds * 1_000_000;
      seed;
      self_tune = (if protocol = "str" then `On 1_000_000 else `Off);
      fault_plan;
    }
  in
  let trace =
    if trace_file = None && trace_jsonl = None then None else Some (Obs.Trace.create ())
  in
  let r = Harness.Runner.run ?trace ?timeseries_us setup in
  (match (timeseries_csv, r.Harness.Runner.timeseries) with
  | Some f, Some ts -> write_file f (Obs.Timeseries.to_csv ts)
  | Some _, None | None, _ -> ());
  Printf.printf "protocol=%s workload=%s clients/node=%d\n" protocol workload clients;
  Printf.printf "  throughput     : %.1f tx/s\n" r.Harness.Runner.throughput;
  Printf.printf "  abort rate     : %.1f%%\n" (100. *. r.Harness.Runner.abort_rate);
  Printf.printf "  misspeculation : %.1f%%\n" (100. *. r.Harness.Runner.misspec_rate);
  Printf.printf "  ext misspec    : %.1f%%\n" (100. *. r.Harness.Runner.ext_misspec_rate);
  Format.printf "  final latency  : %a@." Harness.Metrics.pp_summary
    r.Harness.Runner.final_latency;
  if r.Harness.Runner.spec_latency.Harness.Metrics.count > 0 then
    Format.printf "  spec latency   : %a@." Harness.Metrics.pp_summary
      r.Harness.Runner.spec_latency;
  Printf.printf "  WAN messages   : %d\n" r.Harness.Runner.wan_messages;
  Format.printf "  stats          : %a@." Core.Stats.pp r.Harness.Runner.stats;
  match trace with
  | None -> ()
  | Some tr ->
    let cells =
      [ (Printf.sprintf "protocol=%s/workload=%s/clients=%d" protocol workload clients, tr) ]
    in
    (match trace_file with
    | Some f -> write_file f (Obs.Export.chrome cells)
    | None -> ());
    (match trace_jsonl with
    | Some f -> write_file f (Obs.Export.jsonl cells)
    | None -> ())

let run_cmd =
  let protocol =
    Arg.(
      value
      & opt string "str"
      & info [ "p"; "protocol" ] ~doc:"str | clocksi | extspec | precise | physical-sr")
  in
  let workload =
    Arg.(
      value
      & opt string "synth-a"
      & info [ "w"; "workload" ] ~doc:"synth-a | synth-b | tpcc-a | tpcc-b | tpcc-c | rubis")
  in
  let clients =
    Arg.(value & opt int 10 & info [ "c"; "clients" ] ~doc:"clients per node")
  in
  let seconds =
    Arg.(value & opt int 10 & info [ "t"; "seconds" ] ~doc:"measured (simulated) seconds")
  in
  let warmup =
    Arg.(value & opt int 5 & info [ "warmup" ] ~doc:"warmup (simulated) seconds")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"random seed") in
  let arrival_rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "arrival-rate" ] ~docv:"TX_PER_S"
          ~doc:
            "Switch to open-loop injection: Poisson arrivals at $(docv) \
             transactions per second into each DC.  $(b,--clients) then sets \
             the client population per DC (arrivals finding every client busy \
             are dropped, not queued).")
  in
  let wheel =
    Arg.(
      value & flag
      & info [ "wheel" ]
          ~doc:
            "Back the simulator with the hierarchical timer wheel instead of \
             the binary heap (with $(b,--arrival-rate) only).  Results are \
             byte-identical; only wall-clock changes.")
  in
  let crash =
    Arg.(
      value
      & opt (some int) None
      & info [ "crash" ] ~docv:"DC"
          ~doc:
            "Crash-stop data center $(docv) at $(b,--crash-at-ms) and recover \
             it at $(b,--recover-at-ms) (absolute simulated time).  Switches \
             the config to $(b,Core.Config.with_recovery): decision logging, \
             in-doubt holds and timeout-driven termination.")
  in
  let crash_at_ms =
    Arg.(
      value & opt int 7_000
      & info [ "crash-at-ms" ] ~docv:"MS"
          ~doc:"Crash instant, absolute simulated milliseconds (with $(b,--crash)).")
  in
  let recover_at_ms =
    Arg.(
      value & opt int 9_000
      & info [ "recover-at-ms" ] ~docv:"MS"
          ~doc:
            "Recovery instant, absolute simulated milliseconds (with \
             $(b,--crash)); a value at or below $(b,--crash-at-ms) means the \
             DC stays down (crash-stop).")
  in
  let batch_window =
    Arg.(
      value & opt int 0
      & info [ "batch-window" ] ~docv:"US"
          ~doc:
            "Coalesce commit-pipeline messages per (src,dst) link for up to \
             $(docv) microseconds (queue-oriented speculative batching).  0 \
             (the default) disables coalescing and is bit-identical to the \
             historical engine.")
  in
  let batch_max =
    Arg.(
      value & opt int 16
      & info [ "batch-max" ] ~docv:"N"
          ~doc:
            "Size cap: a link queue flushes early once it holds $(docv) \
             payloads (with $(b,--batch-window)).")
  in
  let timeseries_us =
    Arg.(
      value & opt int 0
      & info [ "timeseries-us" ] ~docv:"US"
          ~doc:
            "Record the deterministic snapshot series (goodput, abort \
             taxonomy, queue depth, speculation depth ...) every $(docv) \
             simulated microseconds.  Sealed into $(b,--trace) output (read \
             it back with $(b,trace_stats --timeseries)).")
  in
  let timeseries_csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "timeseries-csv" ] ~docv:"FILE"
          ~doc:
            "Write the snapshot series to $(docv) as CSV (implies \
             $(b,--timeseries-us) at 500ms when no interval was given).")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a single simulation and print its metrics")
    Term.(
      const run_custom $ protocol $ workload $ clients $ seconds $ warmup $ seed
      $ arrival_rate $ wheel $ crash $ crash_at_ms $ recover_at_ms $ batch_window
      $ batch_max $ timeseries_us $ timeseries_csv $ trace_arg $ trace_jsonl_arg)

let () =
  let open Harness.Experiments in
  let cmds =
    [
      traced_experiment_cmd "fig3a" "Figure 3(a): Synth-A"
        (fun ?tracer ~jobs s -> [ fig3 ?tracer ~jobs ~scale:s `A ]);
      traced_experiment_cmd "fig3b" "Figure 3(b): Synth-B"
        (fun ?tracer ~jobs s -> [ fig3 ?tracer ~jobs ~scale:s `B ]);
      traced_experiment_cmd "fig4" "Figure 4: self-tuning"
        (fun ?tracer ~jobs s -> [ fig4 ?tracer ~jobs ~scale:s () ]);
      traced_experiment_cmd "table1" "Table 1: Precise Clocks ablation"
        (fun ?tracer ~jobs s -> [ table1 ?tracer ~jobs ~scale:s () ]);
      traced_experiment_cmd "fig5a" "Figure 5: TPC-C mix A"
        (fun ?tracer ~jobs s -> [ fig5 ?tracer ~jobs ~scale:s `A ]);
      traced_experiment_cmd "fig5b" "Figure 5: TPC-C mix B"
        (fun ?tracer ~jobs s -> [ fig5 ?tracer ~jobs ~scale:s `B ]);
      traced_experiment_cmd "fig5c" "Figure 5: TPC-C mix C"
        (fun ?tracer ~jobs s -> [ fig5 ?tracer ~jobs ~scale:s `C ]);
      traced_experiment_cmd "fig6" "Figure 6: RUBiS"
        (fun ?tracer ~jobs s -> [ fig6 ?tracer ~jobs ~scale:s () ]);
      experiment_cmd "storage" "Precise Clocks storage overhead"
        (fun ~jobs s -> [ storage ~jobs ~scale:s () ]);
      experiment_cmd "failover"
        "Region failure: goodput and externalized misspeculation through a DC \
         crash and recovery"
        (fun ~jobs s -> [ region_failure ~jobs ~scale:s () ]);
      experiment_cmd "openloop" "Open-loop latency vs offered load (STR vs baselines)"
        (fun ~jobs s -> [ openloop_load ~jobs ~scale:s () ]);
      experiment_cmd "batchfig"
        "Queue-oriented batching: throughput vs batch window x offered load"
        (fun ~jobs s -> [ batch_load ~jobs ~scale:s () ]);
      experiment_cmd "ablations" "Extra ablations (DC count, replication factor, remote reads)"
        (fun ~jobs s -> ablations ~jobs ~scale:s ());
      experiment_cmd "all" "All tables and figures" (fun ~jobs s -> all ~jobs ~scale:s ());
      run_cmd;
    ]
  in
  let info = Cmd.info "str_sim" ~doc:"STR / SPSI geo-replication simulator" in
  exit (Cmd.eval (Cmd.group info cmds))
