(* Bounded model checker driver: exhaustively enumerate event-schedule
   interleavings of a small STR deployment and check the SPSI + liveness
   oracles at every quiescent state.

     mc --dcs 2 --keys 2 --txs 3              # clean engine, deep search
     mc --dcs 2 --keys 2 --txs 2 --broken ww  # must find violations
     mc --dcs 2 --keys 2 --txs 2 --rf 2 --crash-recover 1
                                              # crash-schedule search: node 1's
                                              # crash and recovery become two
                                              # extra transitions the explorer
                                              # orders against every delivery

   Exit status: 0 when the outcome matches the expectation flags
   (--expect-clean / --expect-violation; no flag = report only), 1
   otherwise. *)

open Cmdliner

let run dcs keys txs rf broken crash_recover batching wheel max_runs max_depth
    expect quiet =
  let config =
    match broken with
    | None -> Check.Scenario.config ~batching ()
    | Some `Ww -> Check.Scenario.config ~skip_ww_check:true ~batching ()
    | Some `Spec -> Check.Scenario.config ~unsafe_speculation:true ~batching ()
    | Some `LostCommit -> Check.Scenario.config ~broken_lost_commit:true ~batching ()
    | Some `DoubleRes ->
      Check.Scenario.config ~broken_double_resolution:true ~batching ()
  in
  let fault_plan =
    match crash_recover with
    | None -> []
    | Some n -> [ (0, Dsim.Fault.Crash n); (0, Dsim.Fault.Recover n) ]
  in
  let queue = if wheel then `Wheel else `Heap in
  let s =
    try Check.Scenario.make ~rf ~config ~queue ~fault_plan ~dcs ~keys ~txs ()
    with Invalid_argument msg ->
      Format.eprintf "mc: %s@." msg;
      exit 2
  in
  let report =
    Check.Explorer.explore ~max_runs ~max_depth ~oracle:Check.Oracle.check s
  in
  let clean = report.Check.Explorer.violation = None in
  if not quiet then Format.printf "%a" Check.Explorer.pp_report report
  else
    Format.printf "interleavings=%d states=%d %s@."
      (Check.Explorer.interleavings report)
      report.Check.Explorer.states
      (if clean then "clean" else "VIOLATION");
  if (not quiet) && clean && not report.Check.Explorer.exhausted then
    Format.printf "(run limit hit before exhausting the tree — raise --max-runs)@.";
  match expect with
  | None -> 0
  | Some `Clean -> if clean then 0 else 1
  | Some `Violation ->
    if clean then begin
      Format.printf "expected a violation, found none@.";
      1
    end
    else 0

let dcs = Arg.(value & opt int 2 & info [ "dcs" ] ~docv:"N" ~doc:"Data centers (= nodes).")
let keys = Arg.(value & opt int 2 & info [ "keys" ] ~docv:"N" ~doc:"Keys.")
let txs = Arg.(value & opt int 3 & info [ "txs" ] ~docv:"N" ~doc:"Transactions.")

let rf =
  Arg.(value & opt int 1 & info [ "rf" ] ~docv:"N" ~doc:"Replication factor.")

let broken =
  let variants =
    [
      ("ww", Some `Ww);
      ("spec", Some `Spec);
      ("lost-commit", Some `LostCommit);
      ("double-res", Some `DoubleRes);
    ]
  in
  Arg.(
    value
    & opt (enum (("none", None) :: variants)) None
    & info [ "broken" ] ~docv:"VARIANT"
        ~doc:
          "Deliberately broken engine variant: $(b,ww) skips write-write \
           certification (no pre-commit locks), $(b,spec) lifts the SPSI \
           speculative-read guards, $(b,lost-commit) makes recovery presume \
           abort even for logged commits, $(b,double-res) makes recovery \
           commit in-doubt transactions without consulting the decision log.")

let crash_recover =
  Arg.(
    value
    & opt (some int) None
    & info [ "crash-recover" ] ~docv:"NODE"
        ~doc:
          "Add a crash and a recovery of $(docv) to the explored transition \
           system (with the atomic-commitment recovery protocol on): the \
           explorer enumerates every placement of both actions relative to \
           every message delivery.")

let batching =
  Arg.(
    value & flag
    & info [ "batch" ]
        ~doc:
          "Coalesce the commit pipeline (queue-oriented speculative batching, \
           tiny window and size cap): flush timers become ordinary explored \
           transitions, and in-doubt batched prepares must still resolve \
           through the recovery protocol.")

let wheel =
  Arg.(
    value & flag
    & info [ "wheel" ]
        ~doc:
          "Create the simulator on the hierarchical timer wheel instead of the \
           binary heap.  The explorer's controlled mode supersedes either \
           structure, so counts must be identical — this flag exists to verify \
           that.")

let max_runs =
  Arg.(
    value & opt int 200_000
    & info [ "max-runs" ] ~docv:"N" ~doc:"Stop after N explored schedules.")

let max_depth =
  Arg.(
    value & opt int 4_000
    & info [ "max-depth" ] ~docv:"N"
        ~doc:"Stop branching past N choice points per run (runaway guard).")

let expect =
  let flags =
    [
      (Some `Clean, Arg.info [ "expect-clean" ] ~doc:"Exit 1 unless no violation was found.");
      ( Some `Violation,
        Arg.info [ "expect-violation" ]
          ~doc:"Exit 1 unless a violation was found (broken-variant validation)." );
    ]
  in
  Arg.(value & vflag None flags)

let quiet =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"One-line summary only.")

let cmd =
  let doc = "bounded model checking of SPSI on small STR deployments" in
  Cmd.v
    (Cmd.info "mc" ~doc)
    Term.(
      const run $ dcs $ keys $ txs $ rf $ broken $ crash_recover $ batching $ wheel
      $ max_runs $ max_depth $ expect $ quiet)

let () = exit (Cmd.eval' cmd)
